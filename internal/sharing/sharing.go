// Package sharing implements linear secret sharing over the scalar field
// Z_q of a prime-order group: plain Shamir sharing for threshold access
// structures and the Benaloh-Leichter construction for arbitrary monotone
// threshold-gate formulas (Cachin, DSN 2001, §4.2; Benaloh-Leichter,
// CRYPTO '88).
//
// The access formula is interpreted as a share tree: each Θ_k gate Shamir-
// shares its value with a degree k-1 polynomial among its children, and
// each leaf hands the arriving value to its party. A party may therefore
// hold several atomic shares, one per leaf labelled with its index. Because
// the scheme is linear, a secret can be reconstructed either in the field
// (from scalar shares) or "in the exponent" (from group elements g^share),
// which is exactly what the threshold coin-tossing scheme and the TDH2
// threshold cryptosystem require. All arithmetic goes through the opaque
// Scalar/Point API, so the scheme works unchanged over every group backend.
package sharing

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"sintra/internal/adversary"
	"sintra/internal/group"
)

// Errors reported by the scheme.
var (
	// ErrUnqualified is returned when the available parties do not satisfy
	// the access structure.
	ErrUnqualified = errors.New("sharing: party set is not qualified")
	// ErrMissingShare is returned when a reconstruction input lacks a share
	// selected by the recombination plan.
	ErrMissingShare = errors.New("sharing: missing share value")
)

// Share is one atomic share: the value assigned to one leaf of the access
// formula, owned by the leaf's party.
type Share struct {
	// ID is the leaf index in depth-first order (stable for a formula).
	ID int
	// Party is the owner of the leaf.
	Party int
	// Value is the share scalar in Z_q.
	Value *group.Scalar
}

// Scheme is a linear secret sharing scheme for one access formula.
type Scheme struct {
	g      group.Group
	n      int
	access *adversary.Formula
	leaves []int // leaf index -> party

	// planMu guards planCache, the memoized recombination plans keyed
	// by qualified set. The same few party sets recur for every coin
	// flip and threshold decryption of a run, and a plan costs a full
	// formula walk plus Lagrange interpolation with modular inverses —
	// worth caching. Cached plans are shared read-only snapshots;
	// scalars are immutable, but the maps must never be mutated.
	planMu    sync.RWMutex
	planCache map[adversary.Set]map[int]*group.Scalar
}

// maxCachedPlans bounds the plan cache; there is one possible entry
// per subset of at most 64 parties, so an adversary feeding unusual
// quorums must not grow it without bound. Resetting (rather than LRU)
// keeps the hot path a plain map read.
const maxCachedPlans = 1024

// NewScheme builds a scheme for the given monotone access formula over n
// parties.
func NewScheme(g group.Group, n int, access *adversary.Formula) (*Scheme, error) {
	if err := access.Validate(n); err != nil {
		return nil, fmt.Errorf("sharing: %w", err)
	}
	s := &Scheme{g: g, n: n, access: access}
	s.collectLeaves(access)
	return s, nil
}

// NewThresholdScheme builds a plain (t+1)-out-of-n Shamir scheme, the
// special case where each party holds exactly one share.
func NewThresholdScheme(g group.Group, n, t int) (*Scheme, error) {
	if t < 0 || t >= n {
		return nil, fmt.Errorf("sharing: threshold %d out of range for n=%d", t, n)
	}
	parties := make([]int, n)
	for i := range parties {
		parties[i] = i
	}
	return NewScheme(g, n, adversary.ThresholdOf(t+1, parties))
}

// ForStructure builds the scheme for an adversary structure's access
// formula.
func ForStructure(g group.Group, st *adversary.Structure) (*Scheme, error) {
	return NewScheme(g, st.N(), st.Access)
}

func (s *Scheme) collectLeaves(f *adversary.Formula) {
	if f.IsLeaf() {
		s.leaves = append(s.leaves, f.Party)
		return
	}
	for _, c := range f.Children {
		s.collectLeaves(c)
	}
}

// Group returns the underlying group.
func (s *Scheme) Group() group.Group { return s.g }

// N returns the number of parties.
func (s *Scheme) N() int { return s.n }

// NumShares returns the total number of atomic shares (formula leaves).
func (s *Scheme) NumShares() int { return len(s.leaves) }

// PartyOf returns the owner of share id.
func (s *Scheme) PartyOf(id int) (int, error) {
	if id < 0 || id >= len(s.leaves) {
		return 0, fmt.Errorf("sharing: share id %d out of range", id)
	}
	return s.leaves[id], nil
}

// SharesOf returns the share IDs owned by a party.
func (s *Scheme) SharesOf(party int) []int {
	var out []int
	for id, p := range s.leaves {
		if p == party {
			out = append(out, id)
		}
	}
	return out
}

// Deal splits the secret into atomic shares, one per leaf, in leaf order.
func (s *Scheme) Deal(secret *group.Scalar, rnd io.Reader) ([]Share, error) {
	if !s.g.IsScalar(secret) {
		return nil, errors.New("sharing: secret is not a field scalar")
	}
	shares := make([]Share, 0, len(s.leaves))
	next := 0
	var walk func(f *adversary.Formula, value *group.Scalar) error
	walk = func(f *adversary.Formula, value *group.Scalar) error {
		if f.IsLeaf() {
			shares = append(shares, Share{ID: next, Party: f.Party, Value: value})
			next++
			return nil
		}
		// Shamir-share value with a degree K-1 polynomial; child j
		// receives f(j+1).
		coeffs := make([]*group.Scalar, f.K)
		coeffs[0] = value
		for i := 1; i < f.K; i++ {
			c, err := s.g.RandomScalar(rnd)
			if err != nil {
				return err
			}
			coeffs[i] = c
		}
		for j, child := range f.Children {
			x := s.g.NewScalar(int64(j + 1))
			if err := walk(child, s.evalPoly(coeffs, x)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.access, secret); err != nil {
		return nil, err
	}
	return shares, nil
}

// evalPoly evaluates the polynomial with the given coefficients at x, mod Q.
func (s *Scheme) evalPoly(coeffs []*group.Scalar, x *group.Scalar) *group.Scalar {
	// Horner's rule.
	acc := s.g.NewScalar(0)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = s.g.AddScalar(s.g.MulScalar(acc, x), coeffs[i])
	}
	return acc
}

// Qualified reports whether the party set satisfies the access structure.
func (s *Scheme) Qualified(parties adversary.Set) bool {
	return s.access.Eval(parties)
}

// Coefficients computes a recombination plan for the given qualified party
// set: a map from share ID to coefficient c such that
//
//	secret = Σ_id c_id · value_id  (mod Q).
//
// Only shares owned by the given parties appear in the plan; the selection
// is deterministic (first satisfied children win) so all honest parties
// derive the same plan for the same set.
func (s *Scheme) Coefficients(parties adversary.Set) (map[int]*group.Scalar, error) {
	plan, err := s.plan(parties)
	if err != nil {
		return nil, err
	}
	// Hand out a copy of the map (scalars are immutable, the cached map
	// is not): callers may add or delete entries.
	out := make(map[int]*group.Scalar, len(plan))
	for id, c := range plan {
		out[id] = c
	}
	return out, nil
}

// plan returns the shared, read-only recombination plan for a
// qualified set, computing and caching it on first use.
func (s *Scheme) plan(parties adversary.Set) (map[int]*group.Scalar, error) {
	s.planMu.RLock()
	plan, ok := s.planCache[parties]
	s.planMu.RUnlock()
	if ok {
		return plan, nil
	}
	plan, err := s.computePlan(parties)
	if err != nil {
		return nil, err
	}
	s.planMu.Lock()
	if s.planCache == nil || len(s.planCache) >= maxCachedPlans {
		s.planCache = make(map[adversary.Set]map[int]*group.Scalar)
	}
	s.planCache[parties] = plan
	s.planMu.Unlock()
	return plan, nil
}

func (s *Scheme) computePlan(parties adversary.Set) (map[int]*group.Scalar, error) {
	if !s.Qualified(parties) {
		return nil, ErrUnqualified
	}
	plan := make(map[int]*group.Scalar)
	leafIdx := 0
	var walk func(f *adversary.Formula, factor *group.Scalar, active bool) error
	walk = func(f *adversary.Formula, factor *group.Scalar, active bool) error {
		if f.IsLeaf() {
			if active {
				plan[leafIdx] = factor
			}
			leafIdx++
			return nil
		}
		if !active {
			// Still advance the leaf counter through the subtree.
			for _, c := range f.Children {
				if err := walk(c, nil, false); err != nil {
					return err
				}
			}
			return nil
		}
		// Choose the first K satisfied children.
		var chosen []int
		for j, c := range f.Children {
			if c.Eval(parties) {
				chosen = append(chosen, j)
				if len(chosen) == f.K {
					break
				}
			}
		}
		if len(chosen) < f.K {
			return ErrUnqualified // cannot happen if Eval was true
		}
		lambdas := s.lagrangeAtZero(chosen)
		pos := 0
		for j, c := range f.Children {
			if pos < len(chosen) && chosen[pos] == j {
				sub := s.g.MulScalar(factor, lambdas[pos])
				if err := walk(c, sub, true); err != nil {
					return err
				}
				pos++
			} else {
				if err := walk(c, nil, false); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(s.access, s.g.NewScalar(1), true); err != nil {
		return nil, err
	}
	return plan, nil
}

// lagrangeAtZero computes the Lagrange coefficients at x=0 for the points
// x_j = chosen[j]+1.
func (s *Scheme) lagrangeAtZero(chosen []int) []*group.Scalar {
	out := make([]*group.Scalar, len(chosen))
	for i, ji := range chosen {
		xi := s.g.NewScalar(int64(ji + 1))
		num := s.g.NewScalar(1)
		den := s.g.NewScalar(1)
		for k, jk := range chosen {
			if k == i {
				continue
			}
			xk := s.g.NewScalar(int64(jk + 1))
			num = s.g.MulScalar(num, xk)
			den = s.g.MulScalar(den, s.g.SubScalar(xk, xi))
		}
		out[i] = s.g.MulScalar(num, s.g.InvScalar(den))
	}
	return out
}

// Reconstruct recovers the secret from scalar shares of the given parties.
// values maps share ID to share value; extra entries are ignored, missing
// planned entries are an error.
func (s *Scheme) Reconstruct(parties adversary.Set, values map[int]*group.Scalar) (*group.Scalar, error) {
	plan, err := s.plan(parties)
	if err != nil {
		return nil, err
	}
	acc := s.g.NewScalar(0)
	for id, c := range plan {
		v, ok := values[id]
		if !ok {
			return nil, fmt.Errorf("%w: id %d", ErrMissingShare, id)
		}
		acc = s.g.AddScalar(acc, s.g.MulScalar(c, v))
	}
	return acc, nil
}

// ReconstructExponent recovers g'^secret from group elements g'^value for
// the planned shares of a qualified party set:
//
//	g'^secret = Π_id (g'^value_id)^{c_id},
//
// evaluated as one multi-exponentiation. elements maps share ID to the
// group element; extra entries are ignored.
func (s *Scheme) ReconstructExponent(parties adversary.Set, elements map[int]*group.Point) (*group.Point, error) {
	plan, err := s.plan(parties)
	if err != nil {
		return nil, err
	}
	terms := make([]group.Term, 0, len(plan))
	for id, c := range plan {
		e, ok := elements[id]
		if !ok {
			return nil, fmt.Errorf("%w: id %d", ErrMissingShare, id)
		}
		terms = append(terms, group.Term{Base: e, Exp: c})
	}
	return s.g.MultiExp(terms), nil
}

// VerificationKeys derives the public verification keys g^value for each
// share from a fresh dealing. Protocols publish these so share validity
// proofs (DLEQ) can be checked by everyone.
func (s *Scheme) VerificationKeys(shares []Share) []*group.Point {
	out := make([]*group.Point, len(shares))
	for i, sh := range shares {
		out[i] = s.g.BaseExp(sh.Value)
	}
	return out
}
