package wal

import (
	"bytes"
	"fmt"
	"testing"
)

func TestJournalSlotSubstitution(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	out, replayed, err := j.RecordOutbound("aba", "svc/r1", "BVAL", "bval/1/1", []byte("vote-A"))
	if err != nil || replayed || !bytes.Equal(out, []byte("vote-A")) {
		t.Fatalf("fresh slot: out=%q replayed=%v err=%v", out, replayed, err)
	}
	// Same slot, conflicting bytes: the journaled payload wins.
	out, replayed, err = j.RecordOutbound("aba", "svc/r1", "BVAL", "bval/1/1", []byte("vote-B"))
	if err != nil || !replayed || !bytes.Equal(out, []byte("vote-A")) {
		t.Fatalf("slot hit: out=%q replayed=%v err=%v", out, replayed, err)
	}
	// Different slot in the same instance is independent.
	out, replayed, err = j.RecordOutbound("aba", "svc/r1", "BVAL", "bval/1/0", []byte("vote-B"))
	if err != nil || replayed || !bytes.Equal(out, []byte("vote-B")) {
		t.Fatalf("sibling slot: out=%q replayed=%v err=%v", out, replayed, err)
	}
	j.Close()

	// Restart: the ledger replays and still substitutes.
	j2, err := OpenJournal(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Recovered() != 2 {
		t.Fatalf("recovered %d outbound records, want 2", j2.Recovered())
	}
	out, replayed, err = j2.RecordOutbound("aba", "svc/r1", "BVAL", "bval/1/1", []byte("vote-C"))
	if err != nil || !replayed || !bytes.Equal(out, []byte("vote-A")) {
		t.Fatalf("post-restart slot hit: out=%q replayed=%v err=%v", out, replayed, err)
	}
}

func TestJournalDeliverFrontier(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if j.LastDelivered() != -1 {
		t.Fatalf("fresh journal frontier = %d", j.LastDelivered())
	}
	for seq := int64(0); seq < 20; seq++ {
		if err := j.RecordDeliver(seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := OpenJournal(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastDelivered() != 19 {
		t.Fatalf("replayed frontier = %d, want 19", j2.LastDelivered())
	}
}

func TestJournalCompactBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentSize = 512
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate rounds: outbound records + delivers, then checkpoint
	// compactions that retire old instances.
	for round := 0; round < 30; round++ {
		inst := fmt.Sprintf("svc/dir/r%d", round)
		for s := 0; s < 4; s++ {
			if _, _, err := j.RecordOutbound("rbc", inst, "ECHO", fmt.Sprintf("echo/%d", s), bytes.Repeat([]byte{byte(s)}, 64)); err != nil {
				t.Fatal(err)
			}
		}
		j.RecordDeliver(int64(round), nil)
		if round%10 == 9 {
			stable := round - 5
			j.Forget(func(_, instance, _ string) bool {
				var r int
				if _, err := fmt.Sscanf(instance, "svc/dir/r%d", &r); err != nil {
					return false
				}
				return r < stable
			})
			if err := j.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	size := j.Size()
	// 30 rounds * 4 * 64B payloads ≈ 8KB raw; compaction must keep only
	// the live tail.
	if size > 4096 {
		t.Fatalf("WAL size %dB not bounded by compaction", size)
	}
	live := j.Entries()
	j.Close()

	j2, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Entries() != live {
		t.Fatalf("replay restored %d entries, want %d", j2.Entries(), live)
	}
	if j2.LastDelivered() != 29 {
		t.Fatalf("replay frontier = %d, want 29", j2.LastDelivered())
	}
	// Live slots still substitute after compaction + restart.
	out, replayed, err := j2.RecordOutbound("rbc", "svc/dir/r29", "ECHO", "echo/1", []byte("conflict"))
	if err != nil || !replayed || !bytes.Equal(out, bytes.Repeat([]byte{1}, 64)) {
		t.Fatalf("post-compaction slot hit: replayed=%v err=%v", replayed, err)
	}
}

func TestJournalWedgedRefusesRecords(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.FailAppend = func(lsn uint64) bool { return lsn >= 3 }
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := j.RecordOutbound("rbc", "x", "ECHO", fmt.Sprintf("e/%d", i), []byte("p")); err != nil {
			t.Fatalf("pre-crash record %d: %v", i, err)
		}
	}
	if _, _, err := j.RecordOutbound("rbc", "x", "ECHO", "e/3", []byte("p")); err == nil {
		t.Fatal("crash-point record succeeded; the replica would transmit unjournaled")
	}
	if !j.Wedged() {
		t.Fatal("journal not wedged")
	}
	// Slots journaled before the crash still substitute (mute for new
	// commitments, repeatable for old ones).
	out, replayed, err := j.RecordOutbound("rbc", "x", "ECHO", "e/0", []byte("other"))
	if err != nil || !replayed || !bytes.Equal(out, []byte("p")) {
		t.Fatalf("pre-crash slot after wedge: out=%q replayed=%v err=%v", out, replayed, err)
	}
}

func TestRecordEncodingRoundTrip(t *testing.T) {
	recs := []Rec{
		{Kind: kindOutbound, Protocol: "rbc", Instance: "svc/dir/r3/p1", MsgType: "ECHO", Slot: "echo", Payload: []byte{1, 2, 3}},
		{Kind: kindOutbound, Protocol: "", Instance: "", MsgType: "", Slot: "", Payload: nil},
		{Kind: kindDeliver, Seq: 1 << 40, Digest: []byte("digest")},
		{Kind: kindDeliver, Seq: -1, Digest: nil},
	}
	for _, want := range recs {
		var enc []byte
		switch want.Kind {
		case kindOutbound:
			enc = encodeOutbound(want.Protocol, want.Instance, want.MsgType, want.Slot, want.Payload)
		case kindDeliver:
			enc = encodeDeliver(want.Seq, want.Digest)
		}
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Kind != want.Kind || got.Protocol != want.Protocol || got.Instance != want.Instance ||
			got.MsgType != want.MsgType || got.Slot != want.Slot || !bytes.Equal(got.Payload, want.Payload) ||
			got.Seq != want.Seq || !bytes.Equal(got.Digest, want.Digest) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}

	snap := encodeSnap(41, []Rec{
		{Protocol: "aba", Instance: "i", MsgType: "BVAL", Slot: "bval/1/0", Payload: []byte("x")},
		{Protocol: "abc", Instance: "j", MsgType: "PROPOSAL", Slot: "prop/7", Payload: []byte("y")},
	})
	got, err := DecodeRecord(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != kindSnap || got.Seq != 41 || len(got.Entries) != 2 || got.Entries[1].Slot != "prop/7" {
		t.Fatalf("snap round trip: %+v", got)
	}
}
