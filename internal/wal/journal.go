// Journal: the protocol-level ledger kept on top of the raw log. It
// records every protocol-critical outbound message *before first
// transmission* keyed by a slot — a string that uniquely identifies a
// commitment an honest party never fills twice with different bytes
// (an RBC ECHO, an ABA round-r BVAL for value v, a signed round-r ABC
// proposal, ...). After a crash the replayed ledger substitutes the
// journaled bytes for any re-send of the same slot, so a recovered
// replica can only ever repeat itself, never contradict itself.
package wal

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Record kinds (first byte of a WAL record payload).
const (
	kindOutbound = 'O' // slot-keyed outbound message
	kindDeliver  = 'D' // delivered-sequence state at apply time
	kindSnap     = 'S' // compacted ledger + delivery frontier
)

// ErrCorruptRecord is returned when a record payload does not parse.
// Recovery skips such records (counted) rather than failing: a WAL
// that decodes its frames but not a payload indicates a version skew
// or bit rot that must not take the replica down.
var ErrCorruptRecord = errors.New("wal: corrupt journal record")

// Rec is one decoded journal record.
type Rec struct {
	Kind byte
	// Outbound fields (kindOutbound, and each snapshot entry).
	Protocol, Instance, MsgType, Slot string
	Payload                           []byte
	// Deliver fields (kindDeliver, and the snapshot frontier).
	Seq    int64
	Digest []byte
	// Snapshot ledger (kindSnap).
	Entries []Rec
}

type ledgerEntry struct {
	msgType string
	payload []byte
}

// Journal is the durable vote ledger. Safe for concurrent use.
type Journal struct {
	mu        sync.Mutex
	log       *Log
	ledger    map[string]ledgerEntry
	delivered int64 // highest seq recorded as applied; -1 when none

	// Counters for recovery diagnostics and tests.
	recovered int // outbound records restored at open
	skipped   int // undecodable records skipped at open
}

// journalKey builds the ledger key. Slots are scoped to one protocol
// instance; 0x1f never appears in instance or slot names.
func journalKey(protocol, instance, slot string) string {
	return protocol + "\x1f" + instance + "\x1f" + slot
}

// OpenJournal opens the WAL in dir and replays it into a fresh ledger.
func OpenJournal(dir string, opts Options) (*Journal, error) {
	log, records, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	j := &Journal{log: log, ledger: make(map[string]ledgerEntry), delivered: -1}
	for _, r := range records {
		rec, err := DecodeRecord(r.Payload)
		if err != nil {
			j.skipped++
			continue
		}
		j.applyRec(rec)
	}
	return j, nil
}

func (j *Journal) applyRec(rec Rec) {
	switch rec.Kind {
	case kindOutbound:
		j.ledger[journalKey(rec.Protocol, rec.Instance, rec.Slot)] = ledgerEntry{msgType: rec.MsgType, payload: rec.Payload}
		j.recovered++
	case kindDeliver:
		if rec.Seq > j.delivered {
			j.delivered = rec.Seq
		}
	case kindSnap:
		// A snapshot supersedes everything before it.
		j.ledger = make(map[string]ledgerEntry, len(rec.Entries))
		for _, e := range rec.Entries {
			j.ledger[journalKey(e.Protocol, e.Instance, e.Slot)] = ledgerEntry{msgType: e.MsgType, payload: e.Payload}
		}
		if rec.Seq > j.delivered {
			j.delivered = rec.Seq
		}
	}
}

// RecordOutbound durably records one slot-keyed outbound message and
// returns the bytes that must actually be transmitted. On a fresh slot
// that is the given payload, recorded with a group-commit fsync before
// return (the journal-before-send invariant). On a slot already in the
// ledger — typically a restarted instance re-deciding the same step —
// it returns the journaled bytes instead, with replayed=true; if the
// caller's bytes differ the journaled ones still win, which is exactly
// the "repeat, never contradict" guarantee. An error means the record
// is NOT durable and the message must not be sent.
func (j *Journal) RecordOutbound(protocol, instance, msgType, slot string, payload []byte) (send []byte, replayed bool, err error) {
	key := journalKey(protocol, instance, slot)
	j.mu.Lock()
	if e, ok := j.ledger[key]; ok {
		j.mu.Unlock()
		return e.payload, true, nil
	}
	j.mu.Unlock()

	rec := encodeOutbound(protocol, instance, msgType, slot, payload)
	if _, err := j.log.AppendDurable(rec); err != nil {
		return nil, false, err
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if e, ok := j.ledger[key]; ok { // lost a race with an identical writer
		return e.payload, true, nil
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	j.ledger[key] = ledgerEntry{msgType: msgType, payload: cp}
	return payload, false, nil
}

// RecordDeliver logs the delivered-sequence state at apply time. It is
// asynchronous (no fsync wait): delivery state is independently
// recoverable from checkpoint catch-up, so the record only needs to
// reach the log ordering, not stable storage, before the next step.
func (j *Journal) RecordDeliver(seq int64, digest []byte) error {
	j.mu.Lock()
	if seq > j.delivered {
		j.delivered = seq
	}
	j.mu.Unlock()
	_, err := j.log.Append(encodeDeliver(seq, digest))
	return err
}

// LastDelivered returns the highest delivered sequence the journal has
// seen (from this run or replay), or -1.
func (j *Journal) LastDelivered() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.delivered
}

// Forget drops ledger entries the caller proves obsolete (instances or
// slots retired below the stable checkpoint). Memory-only; the disk
// copy disappears at the next Compact.
func (j *Journal) Forget(drop func(protocol, instance, slot string) bool) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for key := range j.ledger {
		proto, inst, slot := splitKey(key)
		if drop(proto, inst, slot) {
			delete(j.ledger, key)
			n++
		}
	}
	return n
}

func splitKey(key string) (protocol, instance, slot string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '\x1f' {
			for k := i + 1; k < len(key); k++ {
				if key[k] == '\x1f' {
					return key[:i], key[i+1 : k], key[k+1:]
				}
			}
			return key[:i], key[i+1:], ""
		}
	}
	return key, "", ""
}

// Compact writes a snapshot of the live ledger and the delivery
// frontier into a fresh segment, then deletes every earlier segment.
// Driven by checkpoint stability: state below the stable checkpoint is
// recoverable via catch-up, so only the live ledger needs to survive.
func (j *Journal) Compact() error {
	j.mu.Lock()
	entries := make([]Rec, 0, len(j.ledger))
	for key, e := range j.ledger {
		proto, inst, slot := splitKey(key)
		entries = append(entries, Rec{Protocol: proto, Instance: inst, MsgType: e.msgType, Slot: slot, Payload: e.payload})
	}
	delivered := j.delivered
	j.mu.Unlock()

	if err := j.log.Rotate(); err != nil {
		return err
	}
	lsn, err := j.log.AppendDurable(encodeSnap(delivered, entries))
	if err != nil {
		return err
	}
	return j.log.TruncateBefore(lsn)
}

// Entries returns the live ledger size.
func (j *Journal) Entries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.ledger)
}

// Recovered returns how many outbound records the opening replay
// restored; Skipped how many records failed to decode and were
// ignored.
func (j *Journal) Recovered() int { return j.recovered }
func (j *Journal) Skipped() int   { return j.skipped }

// Size returns the WAL's on-disk size in bytes.
func (j *Journal) Size() int64 { return j.log.Size() }

// Wedged reports whether the underlying log has permanently failed.
func (j *Journal) Wedged() bool { return j.log.Wedged() }

// TornBytes reports how many trailing bytes the opening replay discarded
// as a torn or corrupted tail.
func (j *Journal) TornBytes() int64 { return j.log.TornBytes }

// Sync forces outstanding records to stable storage.
func (j *Journal) Sync() error { return j.log.Sync() }

// Close releases the journal, fsyncing outstanding records.
func (j *Journal) Close() error { return j.log.Close() }

// --- record encoding -------------------------------------------------
//
// Hand-rolled little-endian framing (not gob): the decoder must be
// total — bounds-checked against arbitrary bytes, fuzzed by
// FuzzWALRecordDecode — and the encoding must be stable across
// versions since it outlives the process that wrote it.

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func readStr(b []byte) (string, []byte, bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, false
	}
	return string(b[:n]), b[n:], true
}

func readBytes(b []byte) ([]byte, []byte, bool) {
	if len(b) < 4 {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n > MaxRecordSize || len(b) < n {
		return nil, nil, false
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out, b[n:], true
}

func encodeOutboundBody(b []byte, protocol, instance, msgType, slot string, payload []byte) []byte {
	b = appendStr(b, protocol)
	b = appendStr(b, instance)
	b = appendStr(b, msgType)
	b = appendStr(b, slot)
	return appendBytes(b, payload)
}

func encodeOutbound(protocol, instance, msgType, slot string, payload []byte) []byte {
	return encodeOutboundBody([]byte{kindOutbound}, protocol, instance, msgType, slot, payload)
}

func encodeDeliver(seq int64, digest []byte) []byte {
	b := []byte{kindDeliver}
	b = binary.LittleEndian.AppendUint64(b, uint64(seq))
	return appendBytes(b, digest)
}

func encodeSnap(delivered int64, entries []Rec) []byte {
	b := []byte{kindSnap}
	b = binary.LittleEndian.AppendUint64(b, uint64(delivered))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = encodeOutboundBody(b, e.Protocol, e.Instance, e.MsgType, e.Slot, e.Payload)
	}
	return b
}

func decodeOutboundBody(b []byte) (Rec, []byte, bool) {
	var rec Rec
	var ok bool
	if rec.Protocol, b, ok = readStr(b); !ok {
		return rec, nil, false
	}
	if rec.Instance, b, ok = readStr(b); !ok {
		return rec, nil, false
	}
	if rec.MsgType, b, ok = readStr(b); !ok {
		return rec, nil, false
	}
	if rec.Slot, b, ok = readStr(b); !ok {
		return rec, nil, false
	}
	if rec.Payload, b, ok = readBytes(b); !ok {
		return rec, nil, false
	}
	rec.Kind = kindOutbound
	return rec, b, true
}

// DecodeRecord parses one journal record payload. Total: returns
// ErrCorruptRecord instead of panicking on any malformed input.
func DecodeRecord(b []byte) (Rec, error) {
	if len(b) == 0 {
		return Rec{}, ErrCorruptRecord
	}
	kind, body := b[0], b[1:]
	switch kind {
	case kindOutbound:
		rec, rest, ok := decodeOutboundBody(body)
		if !ok || len(rest) != 0 {
			return Rec{}, ErrCorruptRecord
		}
		return rec, nil
	case kindDeliver:
		if len(body) < 8 {
			return Rec{}, ErrCorruptRecord
		}
		seq := int64(binary.LittleEndian.Uint64(body))
		digest, rest, ok := readBytes(body[8:])
		if !ok || len(rest) != 0 {
			return Rec{}, ErrCorruptRecord
		}
		return Rec{Kind: kindDeliver, Seq: seq, Digest: digest}, nil
	case kindSnap:
		if len(body) < 12 {
			return Rec{}, ErrCorruptRecord
		}
		seq := int64(binary.LittleEndian.Uint64(body))
		count := binary.LittleEndian.Uint32(body[8:])
		body = body[12:]
		// Each entry needs at least 4 string headers + payload header.
		if count > uint32(len(body)/12+1) {
			return Rec{}, ErrCorruptRecord
		}
		entries := make([]Rec, 0, count)
		for i := uint32(0); i < count; i++ {
			e, rest, ok := decodeOutboundBody(body)
			if !ok {
				return Rec{}, ErrCorruptRecord
			}
			entries = append(entries, e)
			body = rest
		}
		if len(body) != 0 {
			return Rec{}, ErrCorruptRecord
		}
		return Rec{Kind: kindSnap, Seq: seq, Entries: entries}, nil
	default:
		return Rec{}, ErrCorruptRecord
	}
}
