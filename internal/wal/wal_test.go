package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testOpts disables fsync so unit tests don't pay disk latency; the
// durability path itself is exercised by TestGroupCommitDurable.
func testOpts() Options {
	return Options{SyncInterval: -1, SegmentSize: 1 << 20}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := fmt.Appendf(nil, "record-%d-%s", i, string(make([]byte, i%40)))
		want = append(want, p)
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != uint64(i) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d: LSN %d payload %q", i, r.LSN, r.Payload)
		}
	}
	if l2.NextLSN() != uint64(len(want)) {
		t.Fatalf("NextLSN = %d, want %d", l2.NextLSN(), len(want))
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentSize = 256 // force frequent rotation
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := l.Append(fmt.Appendf(nil, "payload-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected multiple segments, got %v", names)
	}
	_, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("replayed %d records across segments, want 50", len(recs))
	}
}

// corruptTail flips a byte near the end of the newest segment.
func corruptTail(t *testing.T, dir string) {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments to corrupt: %v", err)
	}
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty segment")
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(fmt.Appendf(nil, "rec-%d", i))
	}
	l.Close()

	// Simulate a power-fail partial write: chop bytes mid-frame.
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(recs))
	}
	if l2.TornBytes == 0 {
		t.Fatal("torn bytes not reported")
	}
	// The log must be appendable again, right where the tail ended.
	lsn, err := l2.Append([]byte("after-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 9 {
		t.Fatalf("post-recovery LSN = %d, want 9", lsn)
	}
	l2.Close()
	_, recs, err = Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || !bytes.Equal(recs[9].Payload, []byte("after-recovery")) {
		t.Fatalf("post-recovery replay wrong: %d records", len(recs))
	}
}

func TestCorruptTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(fmt.Appendf(nil, "rec-%d", i))
	}
	l.Close()
	corruptTail(t, dir)

	_, recs, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("replayed %d records after bit flip, want 9", len(recs))
	}
}

func TestCorruptionMidHistoryDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentSize = 128
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		l.Append(fmt.Appendf(nil, "payload-%04d", i))
	}
	l.Close()
	names, _ := segmentNames(dir)
	if len(names) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(names))
	}
	// Corrupt the FIRST segment: everything after the damage is dropped.
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	l2, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 40 {
		t.Fatalf("corruption mid-history kept %d records", len(recs))
	}
	after, _ := segmentNames(dir)
	if len(after) != 1 {
		t.Fatalf("later segments survived corruption: %v", after)
	}
	l2.Close()
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentSize = 128
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		l.Append(fmt.Appendf(nil, "payload-%04d", i))
	}
	before := l.Size()
	if err := l.TruncateBefore(30); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("TruncateBefore reclaimed nothing (%d -> %d bytes)", before, l.Size())
	}
	l.Close()
	_, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= 40 {
		t.Fatalf("replayed %d records after truncation", len(recs))
	}
	// Survivors keep their original LSNs.
	last := recs[len(recs)-1]
	if last.LSN != 39 || !bytes.Equal(last.Payload, []byte("payload-0039")) {
		t.Fatalf("last survivor LSN %d payload %q", last.LSN, last.Payload)
	}
	for _, r := range recs {
		if r.LSN >= 30 && !bytes.Equal(r.Payload, fmt.Appendf(nil, "payload-%04d", r.LSN)) {
			t.Fatalf("record %d corrupted after truncation", r.LSN)
		}
	}
}

func TestGroupCommitDurable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent durable appends must all complete (sharing fsyncs).
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.AppendDurable(fmt.Appendf(nil, "durable-%d", i)); err != nil {
				t.Errorf("AppendDurable: %v", err)
			}
		}(i)
	}
	wg.Wait()
	l.Close()
	_, recs, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16 {
		t.Fatalf("replayed %d durable records, want 16", len(recs))
	}
}

func TestFailAppendWedgesLog(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.FailAppend = func(lsn uint64) bool { return lsn == 5 }
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("ok")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := l.Append([]byte("boom")); err != ErrWedged {
		t.Fatalf("crash-point append error = %v, want ErrWedged", err)
	}
	if !l.Wedged() {
		t.Fatal("log not wedged after crash point")
	}
	// Wedged is permanent, even for records past the crash point.
	if _, err := l.AppendDurable([]byte("later")); err != ErrWedged {
		t.Fatalf("post-wedge append error = %v, want ErrWedged", err)
	}
}
