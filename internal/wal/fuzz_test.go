package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds a well-formed frame around payload, for seeding.
func frame(payload []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// FuzzWALRecordDecode feeds arbitrary bytes through the full recovery
// decode path — segment frame scanning and journal record parsing —
// asserting it never panics and that accepted frames are internally
// consistent. The seed corpus mirrors what live sim logs contain:
// outbound, deliver, and snapshot records, plus torn and bit-flipped
// variants of each.
func FuzzWALRecordDecode(f *testing.F) {
	// Harvested record shapes: the same kinds the engine journal writes
	// during a live run (see journal.go encode*).
	outbound := encodeOutbound("rbc", "svc/dir/r12/p0", "ECHO", "echo", []byte("payload-bytes"))
	vote := encodeOutbound("aba", "svc/dir/r12/m/3/t1", "BVAL", "bval/2/1", bytes.Repeat([]byte{0xab}, 48))
	prop := encodeOutbound("abc", "svc/dir", "PROPOSAL", "prop/12", bytes.Repeat([]byte{0x5a}, 200))
	deliver := encodeDeliver(4093, bytes.Repeat([]byte{7}, 32))
	snap := encodeSnap(4096, []Rec{
		{Protocol: "ckpt", Instance: "svc/dir", MsgType: "SHARE", Slot: "share/4096", Payload: []byte("share")},
		{Protocol: "abc", Instance: "svc/dir", MsgType: "PROPOSAL", Slot: "prop/257", Payload: []byte("prop")},
	})

	f.Add(frame(outbound))
	f.Add(frame(vote))
	f.Add(frame(prop))
	f.Add(frame(deliver))
	f.Add(frame(snap))
	// Multi-record segment.
	f.Add(append(append(frame(outbound), frame(deliver)...), frame(snap)...))
	// Torn tail: a frame cut mid-payload.
	f.Add(frame(prop)[:12])
	// Bit-flipped checksum.
	flipped := frame(vote)
	flipped[5] ^= 0x80
	f.Add(flipped)
	// Oversized length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	// Truncated journal bodies of every kind.
	f.Add(frame(outbound[:3]))
	f.Add(frame(deliver[:5]))
	f.Add(frame(snap[:10]))
	f.Add(frame([]byte{'S', 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, good := ScanSegment(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
		for _, p := range payloads {
			rec, err := DecodeRecord(p)
			if err != nil {
				continue // undecodable records are skipped by recovery
			}
			switch rec.Kind {
			case kindOutbound, kindDeliver:
			case kindSnap:
				for _, e := range rec.Entries {
					if e.Kind != kindOutbound {
						t.Fatalf("snap entry kind %q", e.Kind)
					}
				}
			default:
				t.Fatalf("decoded unknown kind %q", rec.Kind)
			}
			// A decoded outbound record must re-encode losslessly: the
			// substitution ledger depends on the payload surviving.
			if rec.Kind == kindOutbound {
				re := encodeOutbound(rec.Protocol, rec.Instance, rec.MsgType, rec.Slot, rec.Payload)
				if !bytes.Equal(re, p) {
					t.Fatalf("outbound record not canonical: %x != %x", re, p)
				}
			}
		}
	})
}
