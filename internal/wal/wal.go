// Package wal implements a segmented append-only write-ahead log with
// CRC32C-framed records, group-commit fsync batching under a latency
// cap, and torn-tail detection on open. It backs the protocol journal
// (journal.go) that makes crash recovery amnesia-free: a replica that
// durably records every protocol-critical message before first
// transmission can be restarted without risk of equivocation.
//
// On-disk layout: the log directory holds segments named
// "<first-LSN, 16 hex digits>.wal". Each segment is a concatenation of
// frames:
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// LSNs are dense record indices (not byte offsets). Truncation removes
// whole dead segments only, so the first surviving segment's name
// anchors the LSN sequence after a restart.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	frameHeaderSize = 8
	// MaxRecordSize bounds a single record; larger length prefixes are
	// treated as corruption (torn or garbage tail).
	MaxRecordSize = 64 << 20

	segmentSuffix      = ".wal"
	defaultSegmentSize = 4 << 20
	defaultSyncEvery   = 2 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWedged is returned once the log has hit an unrecoverable append
// failure (a real write error, or an injected crash point). A wedged
// log never accepts another record: callers must treat the replica as
// crashed — in particular the journal-before-send invariant turns a
// wedged log into a mute replica, never an equivocating one.
var ErrWedged = errors.New("wal: log is wedged")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// ErrTooLarge is returned for records above MaxRecordSize.
var ErrTooLarge = errors.New("wal: record exceeds maximum size")

// Options configures a Log.
type Options struct {
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	SegmentSize int64
	// SyncInterval is the group-commit latency cap: an AppendDurable
	// waits at most roughly this long before the batch fsync that
	// covers it starts (concurrent appenders within the window share
	// one fsync). Zero selects the default (2ms); negative disables
	// fsync entirely (tests and benchmarks on throwaway data).
	SyncInterval time.Duration
	// FailAppend is a crash-injection hook: when it returns true for
	// the LSN about to be assigned, the log wedges permanently before
	// writing the record. Used by the fault simulator to model a crash
	// at an exact record index, deterministically.
	FailAppend func(lsn uint64) bool
}

// Record is one replayed log entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Log is a segmented append-only log. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when synced/wedged/closed changes
	seg      *os.File
	segStart uint64 // LSN of the active segment's first record
	segSize  int64
	base     uint64 // LSN of the oldest surviving record
	next     uint64 // next LSN to assign
	synced   uint64 // LSNs below this are durable
	diskSize int64  // bytes across sealed segments (excl. active)
	wedged   bool
	closed   bool
	syncErr  error

	syncReq chan struct{}
	quit    chan struct{}
	done    chan struct{}

	// TornBytes reports how many trailing bytes Open discarded as a
	// torn or corrupted tail (diagnostics; set once at open).
	TornBytes int64
}

// Open opens (or creates) the log in dir, replays every intact record,
// truncates any torn or corrupted tail, and returns the recovered
// records in order. The returned payload slices are private copies.
func Open(dir string, opts Options) (*Log, []Record, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = defaultSyncEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		syncReq: make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)

	var records []Record
	for i, name := range names {
		start, err := segmentStart(name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: bad segment name %q: %w", name, err)
		}
		if i == 0 {
			l.base = start
			l.next = start
		} else if start != l.next {
			return nil, nil, fmt.Errorf("wal: segment %q starts at LSN %d, want %d", name, start, l.next)
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		recs, good := ScanSegment(data)
		for _, p := range recs {
			records = append(records, Record{LSN: l.next, Payload: p})
			l.next++
		}
		if good < int64(len(data)) {
			// Torn or corrupted tail: truncate here and drop any later
			// segments — nothing past the damage is trustworthy.
			l.TornBytes += int64(len(data)) - good
			if err := os.Truncate(path, good); err != nil {
				return nil, nil, err
			}
			for _, later := range names[i+1:] {
				st, err2 := os.Stat(filepath.Join(dir, later))
				if err2 == nil {
					l.TornBytes += st.Size()
				}
				if err := os.Remove(filepath.Join(dir, later)); err != nil {
					return nil, nil, err
				}
			}
			names = names[:i+1]
		}
		if i == len(names)-1 {
			l.segStart = start
			l.segSize = good
		} else {
			l.diskSize += good
		}
		if good < int64(len(data)) {
			break
		}
	}
	if len(names) == 0 {
		if err := l.createSegmentLocked(0); err != nil {
			return nil, nil, err
		}
	} else {
		last := filepath.Join(dir, names[len(names)-1])
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		l.seg = f
	}
	l.synced = l.next
	go l.syncLoop()
	return l, records, nil
}

// segmentNames returns the sorted segment file names in dir.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func segmentStart(name string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
}

func segmentName(start uint64) string {
	return fmt.Sprintf("%016x%s", start, segmentSuffix)
}

// ScanSegment parses frames from raw segment bytes, returning the
// decoded payloads and the byte offset of the first damage (== len(b)
// when the segment is fully intact). It never panics, whatever the
// input — the recovery path and the fuzzer both rely on that.
func ScanSegment(b []byte) (payloads [][]byte, good int64) {
	off := int64(0)
	for {
		p, n, err := DecodeFrame(b[off:])
		if err != nil {
			return payloads, off
		}
		if n == 0 { // clean end of data
			return payloads, off
		}
		payloads = append(payloads, p)
		off += int64(n)
	}
}

// DecodeFrame parses a single frame at the start of b. It returns the
// payload (a copy) and the number of bytes consumed. A clean end of
// input returns (nil, 0, nil); a short, oversized, or checksum-failing
// frame returns an error. Never panics.
func DecodeFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, nil
	}
	if len(b) < frameHeaderSize {
		return nil, 0, errors.New("wal: short frame header")
	}
	length := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if length > MaxRecordSize {
		return nil, 0, ErrTooLarge
	}
	end := frameHeaderSize + int(length)
	if len(b) < end {
		return nil, 0, errors.New("wal: short frame payload")
	}
	body := b[frameHeaderSize:end]
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, 0, errors.New("wal: frame checksum mismatch")
	}
	payload = make([]byte, length)
	copy(payload, body)
	return payload, end, nil
}

// encodeFrame appends the frame for payload to dst.
func encodeFrame(dst []byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// createSegmentLocked opens a fresh active segment whose first record
// will be LSN start. Caller holds l.mu (or has exclusive access).
func (l *Log) createSegmentLocked(start uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(start)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.seg = f
	l.segStart = start
	l.segSize = 0
	syncDir(l.dir)
	return nil
}

// syncDir best-effort fsyncs the directory so segment creation and
// removal survive power failure on filesystems that need it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Append writes one record and returns its LSN. The record is durable
// only after a later group-commit sync (see AppendDurable). Any write
// failure or triggered crash point wedges the log permanently.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize {
		return 0, ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedged {
		return 0, ErrWedged
	}
	if l.opts.FailAppend != nil && l.opts.FailAppend(l.next) {
		l.wedged = true
		l.cond.Broadcast()
		return 0, ErrWedged
	}
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.wedged = true
			l.cond.Broadcast()
			return 0, err
		}
	}
	frame := encodeFrame(nil, payload)
	if _, err := l.seg.Write(frame); err != nil {
		l.wedged = true
		l.cond.Broadcast()
		return 0, err
	}
	l.segSize += int64(len(frame))
	lsn := l.next
	l.next++
	return lsn, nil
}

// rotateLocked seals the active segment (fsynced so earlier records
// stay durable independently of the new file) and starts the next one.
func (l *Log) rotateLocked() error {
	if l.opts.SyncInterval >= 0 {
		if err := l.seg.Sync(); err != nil {
			return err
		}
	}
	if err := l.seg.Close(); err != nil {
		return err
	}
	l.diskSize += l.segSize
	if l.synced < l.next {
		l.synced = l.next // sealed segment is fully durable
		l.cond.Broadcast()
	}
	return l.createSegmentLocked(l.next)
}

// AppendDurable writes one record and blocks until the group-commit
// fsync covering it completes (or returns immediately when fsync is
// disabled). Concurrent callers share a single fsync.
func (l *Log) AppendDurable(payload []byte) (uint64, error) {
	lsn, err := l.Append(payload)
	if err != nil {
		return lsn, err
	}
	if l.opts.SyncInterval < 0 {
		return lsn, nil
	}
	select {
	case l.syncReq <- struct{}{}:
	default: // a sync is already pending; it will cover us
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced <= lsn && l.syncErr == nil && !l.wedged && !l.closed {
		l.cond.Wait()
	}
	switch {
	case l.synced > lsn:
		return lsn, nil
	case l.syncErr != nil:
		return lsn, l.syncErr
	case l.wedged:
		return lsn, ErrWedged
	default:
		return lsn, ErrClosed
	}
}

// syncLoop is the group-commit goroutine: it wakes on demand, sleeps
// out the latency cap so concurrent appenders coalesce, then fsyncs
// once for the whole batch.
func (l *Log) syncLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.quit:
			return
		case <-l.syncReq:
		}
		if l.opts.SyncInterval > 0 {
			timer := time.NewTimer(l.opts.SyncInterval)
			select {
			case <-l.quit:
				timer.Stop()
				// Fall through to a final sync below so late
				// AppendDurable callers are not stranded.
			case <-timer.C:
			}
		}
		l.mu.Lock()
		f := l.seg
		target := l.next
		closed := l.closed
		l.mu.Unlock()
		if closed || f == nil {
			return
		}
		err := f.Sync()
		l.mu.Lock()
		if err != nil {
			if l.syncErr == nil {
				l.syncErr = err
			}
			l.wedged = true
		} else if target > l.synced {
			l.synced = target
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Sync forces an immediate fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	f := l.seg
	target := l.next
	l.mu.Unlock()
	if l.opts.SyncInterval < 0 {
		return nil
	}
	err := f.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil && target > l.synced {
		l.synced = target
		l.cond.Broadcast()
	}
	return err
}

// Rotate seals the active segment and starts a new one regardless of
// size; the next record becomes the first of the new segment. Used by
// the journal so a snapshot record opens a segment of its own, letting
// TruncateBefore drop the entire history preceding it.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.wedged {
		return ErrWedged
	}
	if l.segSize == 0 {
		return nil // already fresh
	}
	return l.rotateLocked()
}

// TruncateBefore removes every sealed segment whose records all lie
// below lsn. The active segment is never removed. Reclaims disk for
// history made obsolete by a stable checkpoint.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	names, err := segmentNames(l.dir)
	if err != nil {
		return err
	}
	for i, name := range names {
		start, err := segmentStart(name)
		if err != nil {
			continue
		}
		if start == l.segStart {
			break // never the active segment
		}
		// A sealed segment's records run up to the next segment's start.
		var end uint64
		if i+1 < len(names) {
			if end, err = segmentStart(names[i+1]); err != nil {
				continue
			}
		} else {
			end = l.next
		}
		if end > lsn {
			break
		}
		path := filepath.Join(l.dir, name)
		st, err2 := os.Stat(path)
		if err := os.Remove(path); err != nil {
			return err
		}
		if err2 == nil {
			l.diskSize -= st.Size()
		}
		if start == l.base {
			l.base = end
		}
	}
	syncDir(l.dir)
	return nil
}

// Size returns the total bytes currently on disk across all segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.diskSize + l.segSize
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Wedged reports whether the log has permanently failed.
func (l *Log) Wedged() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged
}

// Close fsyncs outstanding records (unless fsync is disabled) and
// releases the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	f := l.seg
	needSync := l.opts.SyncInterval >= 0 && !l.wedged && l.synced < l.next
	l.mu.Unlock()

	close(l.quit)
	<-l.done

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
	var err error
	if f != nil {
		if needSync {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	l.seg = nil
	return err
}
