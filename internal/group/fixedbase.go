package group

import (
	"math/big"

	"sintra/internal/modexp"
)

// FixedBase holds a windowed precomputation table for one fixed base
// (see internal/modexp). Exponentiations with a fixed base — the
// generator, a dealt verification key — then cost ~|Q|/w table
// multiplications and no squarings. The table is built lazily on
// first use and immutable afterwards, so a FixedBase is safe for
// concurrent use — the engine's verify workers hammer these tables
// from many goroutines.
type FixedBase struct {
	g   *ZpGroup
	tab *modexp.Table
}

func newFixedBase(g *ZpGroup, base *big.Int) *FixedBase {
	return &FixedBase{g: g, tab: modexp.NewTable(base, g.P, g.Q.BitLen())}
}

// Base returns a copy of the base this table was built for.
func (t *FixedBase) Base() *big.Int { return t.tab.Base() }

// Exp returns base^exp mod P using the precomputed table.
func (t *FixedBase) Exp(exp *big.Int) *big.Int { return t.tab.Exp(exp) }

// Precompute registers a windowed precomputation table for base, used
// transparently by Exp and MulExp whenever the *same *big.Int pointer*
// is passed as the base. Intended for dealt long-lived public values —
// verification keys, public keys, secondary generators — whose
// pointers live as long as the Params that hold them. The table
// itself is built lazily on first use; registration is cheap.
//
// The registry is keyed by pointer identity, not value: registering an
// ephemeral value leaks a table slot, so callers should only register
// keys with deployment lifetime. The registered value must never be
// mutated (see TestNoArgumentMutation).
//
// Deprecated: use the Scalar/Point Group API.
func (g *ZpGroup) Precompute(base *big.Int) {
	if base == nil || base.Sign() <= 0 || base == g.G {
		return // G has its own always-on table; see BaseExp.
	}
	if _, loaded := g.precomp.LoadOrStore(base, newFixedBase(g, base)); !loaded {
		g.nPrecomp.Add(1)
	}
}

// fixed returns the precomputation table registered for base, if any.
// The generator always has one (built on first use).
func (g *ZpGroup) fixed(base *big.Int) *FixedBase {
	if base == g.G {
		g.baseOnce.Do(func() { g.baseTab = newFixedBase(g, g.G) })
		return g.baseTab
	}
	if g.nPrecomp.Load() == 0 {
		return nil
	}
	if t, ok := g.precomp.Load(base); ok {
		return t.(*FixedBase)
	}
	return nil
}

// MulExp returns a^x · b^y mod P, the simultaneous double
// exponentiation at the heart of the Chaum–Pedersen verification in
// internal/dleq. Bases with precomputed tables (the generator, or
// anything registered with Precompute) take the fixed-base path; the
// rest fall back to the generic ladder. A joint-window Shamir variant
// was measured and rejected: math/big's internal Montgomery ladder
// beats any externally-reduced shared squaring chain on amd64, so the
// simultaneous win comes from the tables eliminating squarings
// altogether, not from sharing them.
//
// Deprecated: use the Scalar/Point Group API.
func (g *ZpGroup) MulExp(a, x, b, y *big.Int) *big.Int {
	return g.Mul(g.Exp(a, x), g.Exp(b, y))
}

// BigTerm is one base^exp factor of a legacy big.Int MultiExp product.
//
// Deprecated: use Term with the Scalar/Point Group API.
type BigTerm struct {
	Base, Exp *big.Int
}

// MultiExp returns Π base^exp mod P over the given terms, the workhorse
// of random-linear-combination batch verification (internal/dleq).
// Terms whose base has a precomputation table — the generator, dealt
// verification keys — are evaluated through their tables (no squarings
// at all); the remaining terms share a single interleaved squaring
// chain (modexp.MultiExp), so k transient bases cost max|e| squarings
// once instead of k times. Exponents must be non-negative; callers
// reduce mod Q first.
//
// Deprecated: use the Scalar/Point Group API.
func (g *ZpGroup) MultiExp(terms []BigTerm) *big.Int {
	acc := big.NewInt(1)
	tmp := new(big.Int)
	var bases, exps []*big.Int
	for _, t := range terms {
		if t.Exp != nil && t.Exp.Sign() == 0 {
			continue
		}
		if tab := g.fixed(t.Base); tab != nil {
			acc.Mod(tmp.Mul(acc, tab.Exp(t.Exp)), g.P)
			continue
		}
		bases = append(bases, t.Base)
		exps = append(exps, t.Exp)
	}
	if len(bases) > 0 {
		acc.Mod(tmp.Mul(acc, modexp.MultiExp(g.P, bases, exps)), g.P)
	}
	return acc
}
