package group

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"
	"testing"
)

// TestFixedBaseMatchesGeneric cross-checks the windowed fixed-base path
// against plain square-and-multiply for many exponents, including the
// edges the windowing code must get right.
func TestFixedBaseMatchesGeneric(t *testing.T) {
	for _, g := range testGroups() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			base, _ := g.RandomElement(rand.Reader)
			fb := newFixedBase(g, base)
			exps := []*big.Int{
				big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(15),
				big.NewInt(16), big.NewInt(17),
				new(big.Int).Sub(g.Q, big.NewInt(1)),
				new(big.Int).Set(g.Q), // Q itself: x^Q must be 1 for elements
			}
			for i := 0; i < 24; i++ {
				s, _ := g.RandomScalar(rand.Reader)
				exps = append(exps, s)
			}
			for _, e := range exps {
				want := g.expGeneric(base, e)
				if got := fb.Exp(e); got.Cmp(want) != 0 {
					t.Fatalf("fixed-base %v^%v mismatch", base, e)
				}
			}
		})
	}
}

func TestBaseExpUsesTableAndMatches(t *testing.T) {
	g := zpTest256
	for i := 0; i < 32; i++ {
		s, _ := g.RandomScalar(rand.Reader)
		if g.BaseExp(s).Cmp(g.expGeneric(g.G, s)) != 0 {
			t.Fatalf("BaseExp(%v) diverges from generic path", s)
		}
	}
}

func TestPrecomputeRoutesExp(t *testing.T) {
	g := zpTest256
	base, _ := g.RandomElement(rand.Reader)
	g.Precompute(base)
	if g.fixed(base) == nil {
		t.Fatal("registered base has no table")
	}
	s, _ := g.RandomScalar(rand.Reader)
	if g.Exp(base, s).Cmp(g.expGeneric(base, s)) != 0 {
		t.Fatal("precomputed Exp diverges from generic path")
	}
	// A different pointer with the same value must not hit the table.
	clone := new(big.Int).Set(base)
	if g.fixed(clone) != nil {
		t.Fatal("precomp table matched by value, want pointer identity")
	}
}

// TestMulExpMatchesGeneric checks a^x·b^y against two independent
// exponentiations, over every combination of precomputed and
// ad-hoc bases (the fallback path and the dual-fixed-base path).
func TestMulExpMatchesGeneric(t *testing.T) {
	g := zpTest256
	pre, _ := g.RandomElement(rand.Reader)
	g.Precompute(pre)
	adhoc := g.HashToElement("mulexp-test", []byte("b"))
	bases := [][2]*big.Int{
		{adhoc, g.HashToElement("mulexp-test", []byte("c"))}, // fallback path
		{g.G, pre},     // both fixed
		{g.G, adhoc},   // mixed
		{pre, adhoc},   // mixed
		{adhoc, adhoc}, // equal bases
	}
	exps := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(3), new(big.Int).Set(g.Q)}
	for i := 0; i < 8; i++ {
		s, _ := g.RandomScalar(rand.Reader)
		exps = append(exps, s)
	}
	for bi, pair := range bases {
		for _, x := range exps {
			for _, y := range exps {
				want := g.Mul(g.expGeneric(pair[0], x), g.expGeneric(pair[1], y))
				if got := g.MulExp(pair[0], x, pair[1], y); got.Cmp(want) != 0 {
					t.Fatalf("bases[%d]: MulExp(…,%v,…,%v) mismatch", bi, x, y)
				}
			}
		}
	}
}

// TestMultiExpMatchesGeneric checks the batch product Π base^exp over
// mixes of fixed-base and ad-hoc terms against independent generic
// exponentiations.
func TestMultiExpMatchesGeneric(t *testing.T) {
	g := zpTest256
	pre, _ := g.RandomElement(rand.Reader)
	g.Precompute(pre)
	adhoc := []*big.Int{
		g.HashToElement("multiexp-test", []byte("a")),
		g.HashToElement("multiexp-test", []byte("b")),
		g.HashToElement("multiexp-test", []byte("c")),
	}
	for trial := 0; trial < 8; trial++ {
		var terms []BigTerm
		want := big.NewInt(1)
		add := func(base *big.Int, bits uint) {
			e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), bits))
			terms = append(terms, BigTerm{Base: base, Exp: e})
			want = g.Mul(want, g.expGeneric(base, e))
		}
		add(g.G, 256)
		add(pre, 256)
		for _, b := range adhoc {
			add(b, 128) // small batch randomizers
			add(b, 256)
		}
		terms = append(terms, BigTerm{Base: adhoc[0], Exp: big.NewInt(0)}) // zero exp skipped
		if got := g.MultiExp(terms); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: MultiExp diverges from generic product", trial)
		}
	}
	if g.MultiExp(nil).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("empty MultiExp should be the identity")
	}
}

// TestIsElementMatchesExpOracle cross-checks the Jacobi-symbol
// membership test against the original x^Q ≡ 1 exponentiation on
// residues, non-residues, and boundary values.
func TestIsElementMatchesExpOracle(t *testing.T) {
	for _, g := range testGroups() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			cases := []*big.Int{
				big.NewInt(1), big.NewInt(2), big.NewInt(3),
				new(big.Int).Sub(g.P, big.NewInt(1)), // -1: non-residue for safe primes
				g.G,
			}
			for i := 0; i < 16; i++ {
				x, _ := g.RandomElement(rand.Reader)
				cases = append(cases, x)
				// A residue times a non-residue is a non-residue.
				cases = append(cases, g.Mul(x, new(big.Int).Sub(g.P, big.NewInt(1))))
			}
			for _, x := range cases {
				if got, want := g.IsElement(x), g.isElementExp(x); got != want {
					t.Fatalf("IsElement(%v) = %v, oracle says %v", x, got, want)
				}
			}
		})
	}
}

// TestNoArgumentMutation is the aliasing audit demanded by the verify
// pipeline: worker goroutines share *big.Int public keys, so no Group
// method may mutate its arguments. Every arithmetic entry point is
// called and the operands compared against pristine copies.
func TestNoArgumentMutation(t *testing.T) {
	g := zpTest256
	x, _ := g.RandomElement(rand.Reader)
	y, _ := g.RandomElement(rand.Reader)
	a, _ := g.RandomScalar(rand.Reader)
	b, _ := g.RandomScalar(rand.Reader)
	args := []*big.Int{x, y, a, b}
	snap := make([]*big.Int, len(args))
	for i, v := range args {
		snap[i] = new(big.Int).Set(v)
	}

	fb := newFixedBase(g, x)
	g.Precompute(y)
	calls := map[string]func(){
		"Exp":           func() { g.Exp(x, a) },
		"ExpPrecomp":    func() { g.Exp(y, a) },
		"BaseExp":       func() { g.BaseExp(a) },
		"FixedBase.Exp": func() { fb.Exp(a) },
		"MulExp":        func() { g.MulExp(x, a, y, b) },
		"MulExpFixed":   func() { g.MulExp(g.G, a, y, b) },
		"Mul":           func() { g.Mul(x, y) },
		"Inv":           func() { g.Inv(x) },
		"Div":           func() { g.Div(x, y) },
		"IsElement":     func() { g.IsElement(x) },
		"AddScalar":     func() { g.AddScalar(a, b) },
		"SubScalar":     func() { g.SubScalar(a, b) },
		"MulScalar":     func() { g.MulScalar(a, b) },
		"InvScalar":     func() { g.InvScalar(a) },
		"EncodeElement": func() { g.EncodeElement(x) },
		"EncodeScalar":  func() { g.EncodeScalar(a) },
		"HashToScalar":  func() { g.HashToScalar("d", x.Bytes()) },
	}
	for name, call := range calls {
		call()
		for i, v := range args {
			if v.Cmp(snap[i]) != 0 {
				t.Fatalf("%s mutated argument %d: %v != %v", name, i, v, snap[i])
			}
		}
	}
}

// TestConcurrentSharedOperands exercises the exact sharing pattern of
// the verify pool — many goroutines exponentiating with the same
// *big.Int bases and exponents — under the race detector.
func TestConcurrentSharedOperands(t *testing.T) {
	g := zpTest256
	base, _ := g.RandomElement(rand.Reader)
	g.Precompute(base)
	exp, _ := g.RandomScalar(rand.Reader)
	want := g.expGeneric(base, exp)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g.Exp(base, exp).Cmp(want) != 0 {
					panic("concurrent Exp diverged")
				}
				g.BaseExp(exp)
				g.MulExp(g.G, exp, base, exp)
				g.IsElement(base)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkBaseExp compares plain square-and-multiply against the
// fixed-base windowed table for the generator (EXPERIMENTS.md
// "Verification pipeline" records the numbers).
func BenchmarkBaseExp(b *testing.B) {
	for _, g := range []*ZpGroup{zpTest256, zpModp2048} {
		s, _ := g.RandomScalar(rand.Reader)
		b.Run(fmt.Sprintf("%s/generic", g.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.expGeneric(g.G, s)
			}
		})
		b.Run(fmt.Sprintf("%s/precomp", g.Name), func(b *testing.B) {
			g.BaseExp(s) // build the table outside the timed loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.BaseExp(s)
			}
		})
	}
}

// BenchmarkMulExp compares two independent exponentiations against the
// simultaneous (Shamir) path and the dual-fixed-base path.
func BenchmarkMulExp(b *testing.B) {
	g := zpTest256
	h := g.HashToElement("bench-mulexp", []byte("h"))
	x, _ := g.RandomScalar(rand.Reader)
	y, _ := g.RandomScalar(rand.Reader)
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Mul(g.expGeneric(g.G, x), g.expGeneric(h, y))
		}
	})
	b.Run("fallback", func(b *testing.B) {
		h2 := g.HashToElement("bench-mulexp", []byte("h2")) // unregistered pair
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.MulExp(h2, x, h, y)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		g.Precompute(h)
		g.MulExp(g.G, x, h, y) // build tables outside the timed loop
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.MulExp(g.G, x, h, y)
		}
	})
}

// BenchmarkIsElement shows the Jacobi-symbol membership test against
// the x^Q exponentiation it replaced.
func BenchmarkIsElement(b *testing.B) {
	g := zpTest256
	x, _ := g.RandomElement(rand.Reader)
	b.Run("jacobi", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.IsElement(x)
		}
	})
	b.Run("exp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.isElementExp(x)
		}
	})
}
