package group

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// testGroups returns the legacy Z_p* engines; the Scalar/Point Group
// interface has its own cross-backend suite in conformance_test.go.
func testGroups() []*ZpGroup {
	return []*ZpGroup{zpTest256, zpTest512}
}

func TestParamsAreSafePrimes(t *testing.T) {
	for _, g := range []*ZpGroup{zpTest256, zpTest512, zpModp2048} {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			if !g.P.ProbablyPrime(32) {
				t.Fatal("P not prime")
			}
			if !g.Q.ProbablyPrime(32) {
				t.Fatal("Q not prime")
			}
			want := new(big.Int).Rsh(new(big.Int).Sub(g.P, big.NewInt(1)), 1)
			if g.Q.Cmp(want) != 0 {
				t.Fatal("Q != (P-1)/2")
			}
			if !g.IsElement(g.G) {
				t.Fatal("generator not in subgroup")
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{NameMODP2048, NameTest256, NameTest512, NameP256} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("got %q, want %q", g.Name(), name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown group")
	}
}

func TestExpLaws(t *testing.T) {
	g := zpTest256
	a, _ := g.RandomScalar(rand.Reader)
	b, _ := g.RandomScalar(rand.Reader)
	// g^(a+b) == g^a * g^b
	lhs := g.BaseExp(g.AddScalar(a, b))
	rhs := g.Mul(g.BaseExp(a), g.BaseExp(b))
	if lhs.Cmp(rhs) != 0 {
		t.Fatal("additive exponent law broken")
	}
	// (g^a)^b == g^(ab)
	lhs = g.Exp(g.BaseExp(a), b)
	rhs = g.BaseExp(g.MulScalar(a, b))
	if lhs.Cmp(rhs) != 0 {
		t.Fatal("multiplicative exponent law broken")
	}
}

func TestInverses(t *testing.T) {
	g := zpTest256
	x, _ := g.RandomElement(rand.Reader)
	if g.Mul(x, g.Inv(x)).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("element inverse broken")
	}
	if g.Div(x, x).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("Div broken")
	}
	s, _ := g.RandomScalar(rand.Reader)
	if s.Sign() == 0 {
		s = big.NewInt(1)
	}
	if g.MulScalar(s, g.InvScalar(s)).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("scalar inverse broken")
	}
}

func TestIsElementRejectsNonMembers(t *testing.T) {
	g := zpTest256
	cases := []*big.Int{
		nil,
		big.NewInt(0),
		new(big.Int).Set(g.P),
		new(big.Int).Add(g.P, big.NewInt(1)),
		new(big.Int).Neg(big.NewInt(3)),
	}
	for _, c := range cases {
		if g.IsElement(c) {
			t.Fatalf("IsElement accepted %v", c)
		}
	}
	// 2 generates the full group (order 2q), not the QR subgroup, for a
	// safe prime where 2 is a non-residue; accept either but g^q must be 1.
	x, _ := g.RandomElement(rand.Reader)
	if !g.IsElement(x) {
		t.Fatal("IsElement rejected subgroup member")
	}
}

func TestElementRoundTrip(t *testing.T) {
	g := zpTest256
	f := func(seed int64) bool {
		s := new(big.Int).Mod(big.NewInt(seed), g.Q)
		x := g.BaseExp(s)
		enc := g.EncodeElement(x)
		if len(enc) != g.ElementLen() {
			return false
		}
		y, err := g.DecodeElement(enc)
		if err != nil {
			return false
		}
		return x.Cmp(y) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalarRoundTrip(t *testing.T) {
	g := zpTest256
	f := func(seed int64) bool {
		s := new(big.Int).Mod(big.NewInt(seed), g.Q)
		if s.Sign() < 0 {
			s.Add(s, g.Q)
		}
		enc := g.EncodeScalar(s)
		got, err := g.DecodeScalar(enc)
		if err != nil {
			return false
		}
		return got.Cmp(s) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejects(t *testing.T) {
	g := zpTest256
	if _, err := g.DecodeElement([]byte{1, 2, 3}); err == nil {
		t.Fatal("short element accepted")
	}
	// An encoding of a non-residue must be rejected.
	nonMember := big.NewInt(2) // 2 is a quadratic non-residue mod p ≡ 3 (mod 8)
	if !g.IsElement(nonMember) {
		if _, err := g.DecodeElement(g.EncodeElement(nonMember)); err == nil {
			t.Fatal("non-member accepted")
		}
	}
	bad := g.EncodeScalar(big.NewInt(0))
	copy(bad, bytes.Repeat([]byte{0xff}, len(bad))) // >= Q
	if _, err := g.DecodeScalar(bad); err == nil {
		t.Fatal("oversized scalar accepted")
	}
}

func TestHashToElement(t *testing.T) {
	for _, g := range testGroups() {
		h1 := g.HashToElement("coin", []byte("round-1"))
		h2 := g.HashToElement("coin", []byte("round-1"))
		h3 := g.HashToElement("coin", []byte("round-2"))
		h4 := g.HashToElement("other", []byte("round-1"))
		if !g.IsElement(h1) {
			t.Fatal("hash output not in group")
		}
		if h1.Cmp(h2) != 0 {
			t.Fatal("hash not deterministic")
		}
		if h1.Cmp(h3) == 0 || h1.Cmp(h4) == 0 {
			t.Fatal("hash collisions across inputs/domains")
		}
	}
}

func TestHashToElementLengthFraming(t *testing.T) {
	g := zpTest256
	// ("ab","c") must differ from ("a","bc"): inputs are length-framed.
	h1 := g.HashToElement("d", []byte("ab"), []byte("c"))
	h2 := g.HashToElement("d", []byte("a"), []byte("bc"))
	if h1.Cmp(h2) == 0 {
		t.Fatal("hash framing is ambiguous")
	}
}

func TestHashToScalar(t *testing.T) {
	g := zpTest256
	s1 := g.HashToScalar("chal", []byte("x"))
	s2 := g.HashToScalar("chal", []byte("x"))
	if s1.Cmp(s2) != 0 {
		t.Fatal("not deterministic")
	}
	if s1.Cmp(g.Q) >= 0 || s1.Sign() < 0 {
		t.Fatal("scalar out of range")
	}
}

func TestRandomScalarRange(t *testing.T) {
	g := zpTest256
	for i := 0; i < 32; i++ {
		s, err := g.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if s.Sign() < 0 || s.Cmp(g.Q) >= 0 {
			t.Fatal("scalar out of range")
		}
	}
}

func BenchmarkBaseExp2048(b *testing.B) {
	g := zpModp2048
	s, _ := g.RandomScalar(rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BaseExp(s)
	}
}

func BenchmarkBaseExpTest256(b *testing.B) {
	g := zpTest256
	s, _ := g.RandomScalar(rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BaseExp(s)
	}
}
