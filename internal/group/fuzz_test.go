package group

import (
	"bytes"
	"testing"
)

// fuzz seeds: one valid wire encoding per backend plus structural edge
// cases, so the corpus starts on both sides of every validation branch.
func fuzzSeeds(f *testing.F, scalars bool) {
	for _, g := range conformanceBackends() {
		var enc []byte
		var err error
		if scalars {
			enc, err = WireEncodeScalar(g.NewScalar(7))
		} else {
			enc, err = WireEncodeElement(g.Generator())
		}
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Same ID, zeroed body (out of range / not on curve).
		f.Add(append([]byte{byte(g.ID())}, make([]byte, len(enc)-1)...))
		// Truncated.
		f.Add(enc[:len(enc)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE, 1, 2, 3}) // unknown group ID
}

// FuzzPointUnmarshal drives the self-describing point decoder: a decode
// that succeeds must yield a point that re-marshals to the identical
// bytes (canonical encodings) and belongs to the group its ID names.
func FuzzPointUnmarshal(f *testing.F) {
	fuzzSeeds(f, false)
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Point
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded point failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode: %x -> %x", data, out)
		}
		b, err := byID(p.GroupID())
		if err != nil {
			t.Fatalf("decoded point names unknown group %d", p.GroupID())
		}
		// Lax decodes may be non-members (Z_p* order-2 component), but
		// membership testing must never panic or misattribute the group.
		_ = b.IsElement(&p)
	})
}

// FuzzScalarUnmarshal drives the self-describing scalar decoder: any
// accepted scalar is in range for its group and round-trips canonically.
func FuzzScalarUnmarshal(f *testing.F) {
	fuzzSeeds(f, true)
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Scalar
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded scalar failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode: %x -> %x", data, out)
		}
		b, err := byID(s.GroupID())
		if err != nil {
			t.Fatalf("decoded scalar names unknown group %d", s.GroupID())
		}
		if !b.IsScalar(&s) {
			t.Fatalf("decoder accepted out-of-range scalar %v", &s)
		}
	})
}
