package group

import (
	"crypto/elliptic"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// p256Backend is the NIST P-256 elliptic-curve backend. Scalar
// multiplication runs on the stdlib crypto/elliptic P-256 code, which
// dispatches to the constant-time nistec implementation; the curve has
// prime order and cofactor 1, so every on-curve point is a member of
// the prime-order group and decoding doubles as the membership test.
//
// Compared with the 2048-bit Z_p* group this makes an exponentiation an
// order of magnitude cheaper and shrinks a wire element from 256 to 33
// bytes (compressed SEC1), which is why it is the default recommendation
// for new deployments; Z_p* remains as the paper-faithful compatibility
// mode.
//
// Points are affine (x, y) pairs; (0, 0) denotes the point at infinity,
// following crypto/elliptic's convention. The identity has no canonical
// compressed encoding and is rejected on the wire — the protocols never
// legitimately transmit it.
type p256Backend struct {
	curve elliptic.Curve
	order *big.Int // group order n
	p     *big.Int // field prime
	gen   *Point
	ident *Point
}

// p256Group is the backend singleton the registry (api.go) hands out.
var p256Group = newP256Group()

func newP256Group() *p256Backend {
	c := elliptic.P256()
	par := c.Params()
	g := &p256Backend{curve: c, order: par.N, p: par.P}
	g.gen = &Point{id: IDP256, x: par.Gx, y: par.Gy, member: true}
	g.ident = &Point{id: IDP256, x: new(big.Int), y: new(big.Int), member: true}
	return g
}

func (g *p256Backend) Name() string      { return NameP256 }
func (g *p256Backend) ID() GroupID       { return IDP256 }
func (g *p256Backend) ElementLen() int   { return 33 } // compressed SEC1
func (g *p256Backend) ScalarLen() int    { return 32 }
func (g *p256Backend) Generator() *Point { return g.gen }
func (g *p256Backend) Identity() *Point  { return g.ident }

func (g *p256Backend) point(x, y *big.Int) *Point {
	return &Point{id: IDP256, x: x, y: y, member: true}
}

func (g *p256Backend) scalar(v *big.Int) *Scalar { return &Scalar{id: IDP256, v: v} }

func (g *p256Backend) sv(s *Scalar) *big.Int {
	if s.id == IDP256 && s.v.Sign() >= 0 && s.v.Cmp(g.order) < 0 {
		return s.v
	}
	return new(big.Int).Mod(s.v, g.order)
}

// scalarBytes is the fixed-width encoding crypto/elliptic consumes.
func (g *p256Backend) scalarBytes(s *Scalar) []byte {
	return g.sv(s).FillBytes(make([]byte, 32))
}

func (p *Point) isInfinity() bool {
	return p.x != nil && p.x.Sign() == 0 && p.y.Sign() == 0
}

func (g *p256Backend) RandomScalar(rnd io.Reader) (*Scalar, error) {
	v, err := rand.Int(rnd, g.order)
	if err != nil {
		return nil, fmt.Errorf("group: random scalar: %w", err)
	}
	return g.scalar(v), nil
}

func (g *p256Backend) RandomElement(rnd io.Reader) (*Point, error) {
	for {
		s, err := g.RandomScalar(rnd)
		if err != nil {
			return nil, err
		}
		if s.v.Sign() == 0 {
			continue
		}
		return g.BaseExp(s), nil
	}
}

func (g *p256Backend) NewScalar(v int64) *Scalar {
	return g.scalar(new(big.Int).Mod(big.NewInt(v), g.order))
}

func (g *p256Backend) ScalarFromBytes(b []byte) *Scalar {
	return g.scalar(new(big.Int).Mod(new(big.Int).SetBytes(b), g.order))
}

func (g *p256Backend) AddScalar(a, b *Scalar) *Scalar {
	v := new(big.Int).Add(g.sv(a), g.sv(b))
	return g.scalar(v.Mod(v, g.order))
}

func (g *p256Backend) SubScalar(a, b *Scalar) *Scalar {
	v := new(big.Int).Sub(g.sv(a), g.sv(b))
	return g.scalar(v.Mod(v, g.order))
}

func (g *p256Backend) MulScalar(a, b *Scalar) *Scalar {
	v := new(big.Int).Mul(g.sv(a), g.sv(b))
	return g.scalar(v.Mod(v, g.order))
}

func (g *p256Backend) InvScalar(a *Scalar) *Scalar {
	return g.scalar(new(big.Int).ModInverse(g.sv(a), g.order))
}

func (g *p256Backend) NegScalar(a *Scalar) *Scalar {
	v := g.sv(a)
	if v.Sign() == 0 {
		return g.scalar(new(big.Int))
	}
	return g.scalar(new(big.Int).Sub(g.order, v))
}

func (g *p256Backend) IsScalar(s *Scalar) bool {
	return s != nil && s.id == IDP256 && s.v != nil && s.v.Sign() >= 0 && s.v.Cmp(g.order) < 0
}

func (g *p256Backend) HashToScalar(domain string, data ...[]byte) *Scalar {
	// 48 bytes of hash output leave the reduction mod the 256-bit order
	// with negligible bias.
	x := hashWide(domain, data, 48)
	return g.scalar(x.Mod(x, g.order))
}

func (g *p256Backend) EncodeScalar(s *Scalar) []byte {
	return g.sv(s).FillBytes(make([]byte, 32))
}

func (g *p256Backend) DecodeScalar(b []byte) (*Scalar, error) {
	if len(b) != 32 {
		return nil, ErrBadLength
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(g.order) >= 0 {
		return nil, fmt.Errorf("group: scalar out of range")
	}
	return g.scalar(v), nil
}

func (g *p256Backend) BaseExp(e *Scalar) *Point {
	x, y := g.curve.ScalarBaseMult(g.scalarBytes(e))
	return g.point(x, y)
}

func (g *p256Backend) Exp(base *Point, e *Scalar) *Point {
	if base.isInfinity() {
		return g.ident
	}
	x, y := g.curve.ScalarMult(base.x, base.y, g.scalarBytes(e))
	return g.point(x, y)
}

func (g *p256Backend) Mul(a, b *Point) *Point {
	// crypto/elliptic treats (0, 0) as the point at infinity in both
	// operands and the result.
	x, y := g.curve.Add(a.x, a.y, b.x, b.y)
	return g.point(x, y)
}

func (g *p256Backend) Inv(a *Point) *Point {
	if a.isInfinity() {
		return g.ident
	}
	// -(x, y) = (x, p-y); P-256 has odd order, so y is never 0 on-curve.
	return g.point(a.x, new(big.Int).Sub(g.p, a.y))
}

func (g *p256Backend) Div(a, b *Point) *Point { return g.Mul(a, g.Inv(b)) }

func (g *p256Backend) MulExp(a *Point, x *Scalar, b *Point, y *Scalar) *Point {
	return g.Mul(g.Exp(a, x), g.Exp(b, y))
}

func (g *p256Backend) MultiExp(terms []Term) *Point {
	acc := g.ident
	for _, t := range terms {
		if t.Exp != nil && t.Exp.IsZero() {
			continue
		}
		acc = g.Mul(acc, g.Exp(t.Base, t.Exp))
	}
	return acc
}

// Precompute is a no-op: the stdlib already precomputes generator
// tables, and P-256 variable-base multiplication is cheap enough that
// per-base tables would not pay for their memory.
func (g *p256Backend) Precompute(base *Point) {}

func (g *p256Backend) IsElement(p *Point) bool {
	// Every Point this backend constructs or decodes is on the curve,
	// and cofactor 1 makes on-curve equivalent to membership.
	return p != nil && p.id == IDP256 && p.x != nil && p.y != nil && p.member
}

// HashToPoint hashes onto the curve by try-and-increment: derive an x
// candidate (and a y-parity bit) from the counter-extended hash, try to
// decompress, and bump the counter until a curve point appears (two
// attempts expected). Not constant time — the protocols only hash
// public data (coin names, group labels), standing in for the random
// oracle H' exactly as the Z_p* square-into-QR construction does.
func (g *p256Backend) HashToPoint(domain string, data ...[]byte) *Point {
	for ctr := uint32(0); ; ctr++ {
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		framed := append([][]byte{cb[:]}, data...)
		// 48 wide bytes reduce mod p with negligible bias; one more
		// derived byte picks the y parity.
		wide := hashWide(domain+"#x", framed, 49)
		parity := byte(wide.Bit(0))
		x := wide.Rsh(wide, 8)
		x.Mod(x, g.p)
		buf := make([]byte, 33)
		buf[0] = 2 | parity
		x.FillBytes(buf[1:])
		px, py := elliptic.UnmarshalCompressed(g.curve, buf)
		if px != nil {
			return g.point(px, py)
		}
	}
}

func (g *p256Backend) EncodeElement(p *Point) []byte {
	if p.isInfinity() {
		// The identity has no compressed encoding; emit an all-zero
		// string, which DecodeElement rejects — the protocols never
		// transmit the identity.
		return make([]byte, 33)
	}
	return elliptic.MarshalCompressed(g.curve, p.x, p.y)
}

func (g *p256Backend) DecodeElement(b []byte) (*Point, error) {
	if len(b) != 33 {
		return nil, ErrBadLength
	}
	x, y := elliptic.UnmarshalCompressed(g.curve, b)
	if x == nil {
		return nil, ErrNotInGroup
	}
	return g.point(x, y), nil
}

// decodeElementLax is identical to DecodeElement: decompression already
// proves on-curve, and cofactor 1 makes that full membership — there is
// no cheaper lax variant to offer the batch verifiers.
func (g *p256Backend) decodeElementLax(b []byte) (*Point, error) { return g.DecodeElement(b) }

var _ backend = (*p256Backend)(nil)
