package group

import (
	"fmt"
	"io"
	"math/big"
)

// modpGroup adapts the legacy Z_p* arithmetic engine (ZpGroup) to the
// opaque Scalar/Point Group interface. It is the compatibility backend:
// canonical element encodings are byte-identical to the pre-interface
// wire format, so Fiat-Shamir transcripts and dealt key files keep
// their meaning across the redesign.
type modpGroup struct {
	id  GroupID
	zp  *ZpGroup
	gen *Point
	one *Point
}

func newModpGroup(id GroupID, zp *ZpGroup) *modpGroup {
	g := &modpGroup{id: id, zp: zp}
	// The generator Point wraps the same *big.Int the fixed-base table
	// registry keys on, so Exp through the interface still hits it.
	g.gen = &Point{id: id, v: zp.G, member: true}
	g.one = &Point{id: id, v: big.NewInt(1), member: true}
	return g
}

func (g *modpGroup) Name() string     { return g.zp.Name }
func (g *modpGroup) ID() GroupID      { return g.id }
func (g *modpGroup) ElementLen() int  { return g.zp.ElementLen() }
func (g *modpGroup) ScalarLen() int   { return g.zp.ScalarLen() }
func (g *modpGroup) Generator() *Point { return g.gen }
func (g *modpGroup) Identity() *Point  { return g.one }

// point wraps a known subgroup member produced by group arithmetic.
func (g *modpGroup) point(v *big.Int) *Point { return &Point{id: g.id, v: v, member: true} }

func (g *modpGroup) scalar(v *big.Int) *Scalar { return &Scalar{id: g.id, v: v} }

// sv unwraps a scalar operand, reducing foreign or unreduced values
// into this group's field so arithmetic never sees an out-of-range
// exponent (misuse across groups is a programmer error, not UB).
func (g *modpGroup) sv(s *Scalar) *big.Int {
	if s.id == g.id && s.v.Sign() >= 0 && s.v.Cmp(g.zp.Q) < 0 {
		return s.v
	}
	return new(big.Int).Mod(s.v, g.zp.Q)
}

func (g *modpGroup) RandomScalar(rnd io.Reader) (*Scalar, error) {
	v, err := g.zp.RandomScalar(rnd)
	if err != nil {
		return nil, err
	}
	return g.scalar(v), nil
}

func (g *modpGroup) RandomElement(rnd io.Reader) (*Point, error) {
	v, err := g.zp.RandomElement(rnd)
	if err != nil {
		return nil, err
	}
	return g.point(v), nil
}

func (g *modpGroup) NewScalar(v int64) *Scalar {
	return g.scalar(new(big.Int).Mod(big.NewInt(v), g.zp.Q))
}

func (g *modpGroup) ScalarFromBytes(b []byte) *Scalar {
	return g.scalar(new(big.Int).Mod(new(big.Int).SetBytes(b), g.zp.Q))
}

func (g *modpGroup) AddScalar(a, b *Scalar) *Scalar { return g.scalar(g.zp.AddScalar(g.sv(a), g.sv(b))) }
func (g *modpGroup) SubScalar(a, b *Scalar) *Scalar { return g.scalar(g.zp.SubScalar(g.sv(a), g.sv(b))) }
func (g *modpGroup) MulScalar(a, b *Scalar) *Scalar { return g.scalar(g.zp.MulScalar(g.sv(a), g.sv(b))) }
func (g *modpGroup) InvScalar(a *Scalar) *Scalar    { return g.scalar(g.zp.InvScalar(g.sv(a))) }

func (g *modpGroup) NegScalar(a *Scalar) *Scalar {
	v := g.sv(a)
	if v.Sign() == 0 {
		return g.scalar(new(big.Int))
	}
	return g.scalar(new(big.Int).Sub(g.zp.Q, v))
}

func (g *modpGroup) IsScalar(s *Scalar) bool {
	return s != nil && s.id == g.id && s.v != nil && s.v.Sign() >= 0 && s.v.Cmp(g.zp.Q) < 0
}

func (g *modpGroup) HashToScalar(domain string, data ...[]byte) *Scalar {
	return g.scalar(g.zp.HashToScalar(domain, data...))
}

func (g *modpGroup) EncodeScalar(s *Scalar) []byte { return g.zp.EncodeScalar(g.sv(s)) }

func (g *modpGroup) DecodeScalar(b []byte) (*Scalar, error) {
	v, err := g.zp.DecodeScalar(b)
	if err != nil {
		return nil, err
	}
	return g.scalar(v), nil
}

func (g *modpGroup) BaseExp(e *Scalar) *Point { return g.point(g.zp.BaseExp(g.sv(e))) }

func (g *modpGroup) Exp(base *Point, e *Scalar) *Point {
	return g.point(g.zp.Exp(base.v, g.sv(e)))
}

func (g *modpGroup) Mul(a, b *Point) *Point { return g.point(g.zp.Mul(a.v, b.v)) }
func (g *modpGroup) Inv(a *Point) *Point    { return g.point(g.zp.Inv(a.v)) }
func (g *modpGroup) Div(a, b *Point) *Point { return g.point(g.zp.Div(a.v, b.v)) }

func (g *modpGroup) MulExp(a *Point, x *Scalar, b *Point, y *Scalar) *Point {
	return g.point(g.zp.MulExp(a.v, g.sv(x), b.v, g.sv(y)))
}

func (g *modpGroup) MultiExp(terms []Term) *Point {
	bts := make([]BigTerm, len(terms))
	for i, t := range terms {
		bts[i] = BigTerm{Base: t.Base.v, Exp: g.sv(t.Exp)}
	}
	return g.point(g.zp.MultiExp(bts))
}

func (g *modpGroup) Precompute(base *Point) {
	if base == nil || base.v == nil {
		return
	}
	g.zp.Precompute(base.v)
}

func (g *modpGroup) IsElement(p *Point) bool {
	if p == nil || p.id != g.id || p.v == nil {
		return false
	}
	if p.member {
		return true
	}
	return g.zp.IsElement(p.v)
}

func (g *modpGroup) HashToPoint(domain string, data ...[]byte) *Point {
	return g.point(g.zp.HashToElement(domain, data...))
}

func (g *modpGroup) EncodeElement(p *Point) []byte { return g.zp.EncodeElement(p.v) }

func (g *modpGroup) DecodeElement(b []byte) (*Point, error) {
	v, err := g.zp.DecodeElement(b)
	if err != nil {
		return nil, err
	}
	return g.point(v), nil
}

// decodeElementLax range-checks a wire element without the Jacobi
// membership test: the DLEQ batch verifiers fold laxly decoded
// commitments into a sign-blind product and would otherwise pay a
// Jacobi symbol per commitment (see dleq.BatchVerify). IsElement
// performs the deferred test for callers that need full membership.
func (g *modpGroup) decodeElementLax(b []byte) (*Point, error) {
	if len(b) != g.zp.byteLen {
		return nil, ErrBadLength
	}
	v := new(big.Int).SetBytes(b)
	if v.Sign() <= 0 || v.Cmp(g.zp.P) >= 0 {
		return nil, ErrNotInGroup
	}
	return &Point{id: g.id, v: v}, nil
}

var _ backend = (*modpGroup)(nil)

// String aids debugging in test failures.
func (g *modpGroup) String() string { return fmt.Sprintf("group(%s)", g.zp.Name) }
