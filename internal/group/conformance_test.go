package group

import (
	"bytes"
	"crypto/rand"
	"errors"
	"sync"
	"testing"
)

// conformanceBackends lists every registered parameter set. The
// production MODP group runs the same harness as the test-sized ones:
// the suite performs a bounded number of exponentiations, so even
// 2048-bit arithmetic stays in test budget.
func conformanceBackends() []Group {
	return []Group{MODP2048(), Test512(), Test256(), P256()}
}

// TestGroupConformance runs the shared cross-backend suite against every
// backend. Any new parameter set must pass groupConformance unchanged —
// the protocols above (dleq, coin, threnc, sharing) assume exactly these
// laws and nothing backend-specific.
func TestGroupConformance(t *testing.T) {
	for _, g := range conformanceBackends() {
		t.Run(g.Name(), func(t *testing.T) { groupConformance(t, g) })
	}
}

// groupConformance asserts the Group contract: group and scalar-field
// laws, canonical encode/decode round-trips, hash-to-point/scalar
// determinism and range, non-member and foreign-encoding rejection,
// argument immutability, and safety under concurrent use of shared
// operands.
func groupConformance(t *testing.T, g Group) {
	t.Helper()

	r := func() *Scalar {
		s, err := g.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := r(), r()
	p, err := g.RandomElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("scalar-field-laws", func(t *testing.T) {
		one, zero := g.NewScalar(1), g.NewScalar(0)
		if !g.AddScalar(a, g.NegScalar(a)).Equal(zero) {
			t.Error("a + (-a) != 0")
		}
		if !g.SubScalar(a, a).Equal(zero) {
			t.Error("a - a != 0")
		}
		if !g.MulScalar(a, g.InvScalar(a)).Equal(one) {
			t.Error("a * a^-1 != 1")
		}
		if !g.AddScalar(a, b).Equal(g.AddScalar(b, a)) {
			t.Error("addition not commutative")
		}
		if !g.MulScalar(a, b).Equal(g.MulScalar(b, a)) {
			t.Error("multiplication not commutative")
		}
		if !g.NewScalar(-1).Equal(g.NegScalar(one)) {
			t.Error("NewScalar(-1) != -1")
		}
		if !g.IsScalar(a) || g.IsScalar(nil) {
			t.Error("IsScalar misclassifies")
		}
		// Wide-input reduction: 2*len bytes of 0xFF is in range after
		// ScalarFromBytes.
		wide := bytes.Repeat([]byte{0xFF}, 2*g.ScalarLen())
		if !g.IsScalar(g.ScalarFromBytes(wide)) {
			t.Error("ScalarFromBytes result out of range")
		}
	})

	t.Run("exponent-laws", func(t *testing.T) {
		// g^a · g^b = g^(a+b)
		if !g.Mul(g.BaseExp(a), g.BaseExp(b)).Equal(g.BaseExp(g.AddScalar(a, b))) {
			t.Error("BaseExp not homomorphic")
		}
		// (p^a)^b = p^(ab)
		if !g.Exp(g.Exp(p, a), b).Equal(g.Exp(p, g.MulScalar(a, b))) {
			t.Error("iterated Exp != product exponent")
		}
		if !g.Exp(p, g.NewScalar(0)).Equal(g.Identity()) {
			t.Error("p^0 != identity")
		}
		if !g.Exp(p, g.NewScalar(1)).Equal(p) {
			t.Error("p^1 != p")
		}
		if !g.Mul(p, g.Inv(p)).Equal(g.Identity()) {
			t.Error("p · p^-1 != identity")
		}
		if !g.Div(g.Exp(p, a), p).Equal(g.Exp(p, g.SubScalar(a, g.NewScalar(1)))) {
			t.Error("Div != exponent subtraction")
		}
		if !g.Mul(p, g.Identity()).Equal(p) {
			t.Error("p · 1 != p")
		}
		// BaseExp must agree with Exp on the generator.
		if !g.BaseExp(a).Equal(g.Exp(g.Generator(), a)) {
			t.Error("BaseExp != Exp(Generator)")
		}
	})

	t.Run("multiexp", func(t *testing.T) {
		q, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Mul(g.Exp(p, a), g.Exp(q, b))
		if got := g.MulExp(p, a, q, b); !got.Equal(want) {
			t.Error("MulExp != product of Exps")
		}
		terms := []Term{{Base: p, Exp: a}, {Base: q, Exp: b}, {Base: g.Generator(), Exp: g.NewScalar(0)}}
		if got := g.MultiExp(terms); !got.Equal(want) {
			t.Error("MultiExp != product of Exps (zero exponent not skipped?)")
		}
		if !g.MultiExp(nil).Equal(g.Identity()) {
			t.Error("empty MultiExp != identity")
		}
		// Precompute must not change results.
		g.Precompute(p)
		if !g.Exp(p, a).Equal(g.MultiExp([]Term{{Base: p, Exp: a}})) {
			t.Error("precomputed base disagrees")
		}
	})

	t.Run("encode-decode", func(t *testing.T) {
		eb := g.EncodeElement(p)
		if len(eb) != g.ElementLen() {
			t.Fatalf("element encoding %d bytes, ElementLen %d", len(eb), g.ElementLen())
		}
		back, err := g.DecodeElement(eb)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(p) || !g.IsElement(back) {
			t.Error("element round-trip broken")
		}
		sb := g.EncodeScalar(a)
		if len(sb) != g.ScalarLen() {
			t.Fatalf("scalar encoding %d bytes, ScalarLen %d", len(sb), g.ScalarLen())
		}
		sback, err := g.DecodeScalar(sb)
		if err != nil {
			t.Fatal(err)
		}
		if !sback.Equal(a) {
			t.Error("scalar round-trip broken")
		}
		// Self-describing form: ID prefix plus the canonical bytes.
		wire, err := WireEncodeElement(p)
		if err != nil {
			t.Fatal(err)
		}
		if wire[0] != byte(g.ID()) || !bytes.Equal(wire[1:], eb) {
			t.Error("wire form is not ID||canonical")
		}
		wback, err := WireDecodeElement(g, wire)
		if err != nil || !wback.Equal(p) {
			t.Errorf("wire element round-trip broken: %v", err)
		}
		// Wrong lengths are rejected.
		if _, err := g.DecodeElement(eb[:len(eb)-1]); err == nil {
			t.Error("short element accepted")
		}
		if _, err := g.DecodeScalar(append(sb, 0)); err == nil {
			t.Error("long scalar accepted")
		}
		// The all-zero encoding never names a usable element.
		if _, err := g.DecodeElement(make([]byte, g.ElementLen())); err == nil {
			t.Error("zero element encoding accepted")
		}
	})

	t.Run("hash-determinism", func(t *testing.T) {
		h1 := g.HashToPoint("conformance", []byte("x"), []byte("y"))
		h2 := g.HashToPoint("conformance", []byte("x"), []byte("y"))
		if !h1.Equal(h2) {
			t.Error("HashToPoint not deterministic")
		}
		if !g.IsElement(h1) {
			t.Error("HashToPoint output not a member")
		}
		if h1.Equal(g.HashToPoint("other-domain", []byte("x"), []byte("y"))) {
			t.Error("domain separation broken")
		}
		// Length framing: ("x","y") and ("xy","") must differ.
		if h1.Equal(g.HashToPoint("conformance", []byte("xy"), []byte(""))) {
			t.Error("input framing broken")
		}
		s1 := g.HashToScalar("conformance", []byte("x"))
		if !s1.Equal(g.HashToScalar("conformance", []byte("x"))) {
			t.Error("HashToScalar not deterministic")
		}
		if !g.IsScalar(s1) {
			t.Error("HashToScalar output out of range")
		}
	})

	t.Run("membership", func(t *testing.T) {
		if !g.IsElement(g.Generator()) || !g.IsElement(p) {
			t.Error("members misclassified")
		}
		if g.IsElement(nil) {
			t.Error("nil accepted as element")
		}
		foreign := Test512().Generator()
		if g.ID() != Test512().ID() && g.IsElement(foreign) {
			t.Error("foreign-group element accepted")
		}
	})

	t.Run("no-argument-mutation", func(t *testing.T) {
		pe, ae := g.EncodeElement(p), g.EncodeScalar(a)
		g.Exp(p, a)
		g.Mul(p, p)
		g.Inv(p)
		g.MulExp(p, a, p, b)
		g.MultiExp([]Term{{Base: p, Exp: a}})
		g.AddScalar(a, b)
		g.MulScalar(a, b)
		g.InvScalar(a)
		g.NegScalar(a)
		g.Precompute(p)
		if !bytes.Equal(pe, g.EncodeElement(p)) {
			t.Error("operations mutated a Point argument")
		}
		if !bytes.Equal(ae, g.EncodeScalar(a)) {
			t.Error("operations mutated a Scalar argument")
		}
	})

	t.Run("concurrent-shared-operands", func(t *testing.T) {
		want := g.Exp(p, a)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if !g.Exp(p, a).Equal(want) {
						t.Error("concurrent Exp disagrees")
						return
					}
					g.Precompute(p) // racing table construction must be safe
					if !g.IsElement(p) {
						t.Error("concurrent IsElement disagrees")
						return
					}
					g.MultiExp([]Term{{Base: p, Exp: a}, {Base: g.Generator(), Exp: b}})
				}
			}()
		}
		wg.Wait()
	})
}

// BenchmarkGroupOps measures every hot operation through the Group
// interface, per backend — the per-op rows of the EXPERIMENTS.md
// modp2048-vs-p256 comparison. "BaseExp" and "MulExp" run with the
// fixed-base tables registered, matching production verification.
func BenchmarkGroupOps(b *testing.B) {
	for _, g := range []Group{MODP2048(), P256(), Test256()} {
		x, _ := g.RandomScalar(rand.Reader)
		y, _ := g.RandomScalar(rand.Reader)
		h := g.HashToPoint("bench-ops", []byte("h"))
		g.Precompute(h)
		p := g.BaseExp(x)
		enc := g.EncodeElement(p)
		g.MulExp(g.Generator(), x, h, y) // build tables untimed
		b.Run(g.Name()+"/BaseExp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.BaseExp(x)
			}
		})
		b.Run(g.Name()+"/Exp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Exp(p, x)
			}
		})
		b.Run(g.Name()+"/MulExp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.MulExp(g.Generator(), x, h, y)
			}
		})
		b.Run(g.Name()+"/IsElement", func(b *testing.B) {
			// Measure the real membership test on a wire point: lax
			// decodes leave the member flag unset, so IsElement pays
			// the Jacobi symbol (Z_p*) or the cached flag check (P-256).
			var lax Point
			if err := lax.UnmarshalBinary(append([]byte{byte(g.ID())}, enc...)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.IsElement(&lax)
			}
		})
		b.Run(g.Name()+"/DecodeElement", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.DecodeElement(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCrossGroupRejection feeds every backend's self-describing
// encodings to every other backend: the one-byte ID prefix must make
// the decode fail with ErrGroupMismatch, never silently reinterpret.
func TestCrossGroupRejection(t *testing.T) {
	gs := conformanceBackends()
	for _, src := range gs {
		for _, dst := range gs {
			if src.ID() == dst.ID() {
				continue
			}
			pe, err := WireEncodeElement(src.Generator())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WireDecodeElement(dst, pe); !errors.Is(err, ErrGroupMismatch) {
				t.Errorf("%s element decoded by %s: %v", src.Name(), dst.Name(), err)
			}
			se, err := WireEncodeScalar(src.NewScalar(7))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WireDecodeScalar(dst, se); !errors.Is(err, ErrGroupMismatch) {
				t.Errorf("%s scalar decoded by %s: %v", src.Name(), dst.Name(), err)
			}
		}
	}
	// Unknown IDs are rejected as such.
	bad := []byte{0xEE, 1, 2, 3}
	if _, err := WireDecodeElement(Test256(), bad); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("unknown group id: %v", err)
	}
	var pt Point
	if err := pt.UnmarshalBinary(bad); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("unknown group id via UnmarshalBinary: %v", err)
	}
}

// TestGobCrossGroupIdentity checks the gob forms protocols exchange:
// a Point gob-decodes into the group that produced it, and the decoded
// value is usable there but rejected (IsElement/IsScalar) everywhere
// else — the property the protocol layers rely on when a share dealt
// over one backend reaches a node running another.
func TestGobCrossGroupIdentity(t *testing.T) {
	src, dst := Test256(), P256()
	enc, err := src.Generator().GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := back.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	if back.GroupID() != src.ID() {
		t.Fatal("gob round-trip changed group identity")
	}
	if !src.IsElement(&back) {
		t.Error("gob round-trip lost membership in the source group")
	}
	if dst.IsElement(&back) {
		t.Error("foreign gob element accepted by another backend")
	}
	s := src.NewScalar(42)
	senc, err := s.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var sback Scalar
	if err := sback.GobDecode(senc); err != nil {
		t.Fatal(err)
	}
	if !src.IsScalar(&sback) || dst.IsScalar(&sback) {
		t.Error("gob scalar group identity broken")
	}
}
