// Package group implements the prime-order groups underlying all of the
// threshold-cryptographic primitives in this repository, behind a
// backend-agnostic Scalar/Point API.
//
// Two backends satisfy the Group interface:
//
//   - the Z_p* backend (modp2048, test512, test256): the subgroup of
//     quadratic residues of Z_p* for a safe prime p = 2q + 1, the group
//     of the paper (Cachin, "Distributing Trust on the Internet", DSN
//     2001, §2.1), kept as the wire-compatible compatibility mode; and
//   - the P-256 backend: the NIST P-256 elliptic curve over the stdlib
//     constant-time scalar multiplication, with order-of-magnitude
//     cheaper exponentiations and ~8x smaller wire elements.
//
// The Decisional Diffie-Hellman problem is assumed hard in both groups;
// the threshold coin-tossing scheme (internal/coin) and the TDH2
// threshold cryptosystem (internal/threnc) base their security on it.
//
// Scalars and Points are opaque immutable values created by a Group.
// Their self-describing binary encoding carries a one-byte group ID, so
// a share dealt over one group can never be silently misinterpreted by
// a party running another (see WireDecodeElement).
package group

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"os"
)

// Common errors returned by the decoding helpers.
var (
	// ErrNotInGroup is returned when a decoded value is not a member of
	// the prime-order group.
	ErrNotInGroup = errors.New("group: value is not a group element")
	// ErrBadLength is returned when an encoded value has the wrong size.
	ErrBadLength = errors.New("group: encoded value has wrong length")
	// ErrGroupMismatch is returned when a self-describing encoding names
	// a different group than the one decoding it — a MODP node fed a
	// P-256 share, or vice versa.
	ErrGroupMismatch = errors.New("group: encoded value belongs to a different group")
	// ErrUnknownGroup is returned for encodings whose group ID byte does
	// not name any known parameter set.
	ErrUnknownGroup = errors.New("group: unknown group id")
)

// GroupID is the one-byte identifier a parameter set stamps into every
// encoded Scalar and Point (the wire prefix of satellite encodings).
// IDs are append-only wire constants: never renumber them.
type GroupID byte

// Known parameter-set IDs.
const (
	// IDModp2048 is the RFC 3526 2048-bit Z_p* group.
	IDModp2048 GroupID = 1
	// IDTest512 is the 512-bit Z_p* testing group.
	IDTest512 GroupID = 2
	// IDTest256 is the 256-bit Z_p* testing group.
	IDTest256 GroupID = 3
	// IDP256 is the NIST P-256 elliptic-curve group.
	IDP256 GroupID = 4
)

// Named parameter sets, for configuration files and flags.
const (
	// NameMODP2048 selects the RFC 3526 2048-bit Z_p* group.
	NameMODP2048 = "modp2048"
	// NameTest512 selects the 512-bit Z_p* testing group.
	NameTest512 = "test512"
	// NameTest256 selects the 256-bit Z_p* testing group.
	NameTest256 = "test256"
	// NameP256 selects the NIST P-256 elliptic-curve group.
	NameP256 = "p256"
)

// Scalar is an opaque scalar modulo a group's order. Scalars are
// immutable and safe for concurrent use; they are created by a Group
// (RandomScalar, HashToScalar, the scalar arithmetic) or decoded from
// bytes. The zero value is invalid.
type Scalar struct {
	id GroupID
	v  *big.Int
}

// GroupID reports which parameter set the scalar belongs to.
func (s *Scalar) GroupID() GroupID { return s.id }

// IsZero reports whether the scalar is 0.
func (s *Scalar) IsZero() bool { return s != nil && s.v != nil && s.v.Sign() == 0 }

// Equal reports whether two scalars are the same value of the same group.
func (s *Scalar) Equal(o *Scalar) bool {
	if s == nil || o == nil {
		return s == o
	}
	return s.id == o.id && s.v.Cmp(o.v) == 0
}

func (s *Scalar) String() string {
	if s == nil || s.v == nil {
		return "Scalar(nil)"
	}
	return fmt.Sprintf("Scalar(%d:%x)", s.id, s.v)
}

// MarshalBinary encodes the scalar as its group ID byte followed by the
// fixed-width big-endian value.
func (s *Scalar) MarshalBinary() ([]byte, error) {
	if s == nil || s.v == nil {
		return nil, errors.New("group: marshal of invalid scalar")
	}
	b, err := byID(s.id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 1+b.ScalarLen())
	out[0] = byte(s.id)
	s.v.FillBytes(out[1:])
	return out, nil
}

// UnmarshalBinary decodes a self-describing scalar, validating its range
// against the order of the group its ID byte names.
func (s *Scalar) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return ErrBadLength
	}
	b, err := byID(GroupID(data[0]))
	if err != nil {
		return err
	}
	dec, err := b.DecodeScalar(data[1:])
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}

// GobEncode implements gob.GobEncoder with the MarshalBinary format, so
// protocol messages carrying scalars are self-describing on the wire.
func (s *Scalar) GobEncode() ([]byte, error) { return s.MarshalBinary() }

// GobDecode implements gob.GobDecoder.
func (s *Scalar) GobDecode(data []byte) error { return s.UnmarshalBinary(data) }

// Point is an opaque group element. Points are immutable and safe for
// concurrent use; they are created by a Group (exponentiations,
// HashToPoint, ...) or decoded from bytes. The zero value is invalid.
//
// A Point decoded from the network with UnmarshalBinary is structurally
// validated (length, range, on-curve) but — for the Z_p* backend — not
// necessarily subgroup-checked: IsElement performs the (memoization-free)
// membership test, exactly as the batch verifiers require (their folded
// product check deliberately skips per-commitment membership; see
// internal/dleq).
type Point struct {
	id GroupID
	// v is the Z_p* representation: a residue in [1, p-1].
	v *big.Int
	// x, y are the elliptic-curve affine coordinates; (0, 0) is the
	// point at infinity, following crypto/elliptic's convention.
	x, y *big.Int
	// member records that the point is a known subgroup member (created
	// by group arithmetic or a strict decode). Z_p* points decoded laxly
	// from the wire leave it false and pay a Jacobi test in IsElement.
	member bool
}

// GroupID reports which parameter set the point belongs to.
func (p *Point) GroupID() GroupID { return p.id }

// Equal reports whether two points are the same element of the same group.
func (p *Point) Equal(o *Point) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.id != o.id {
		return false
	}
	if p.v != nil || o.v != nil {
		return p.v != nil && o.v != nil && p.v.Cmp(o.v) == 0
	}
	return p.x.Cmp(o.x) == 0 && p.y.Cmp(o.y) == 0
}

func (p *Point) String() string {
	if p == nil {
		return "Point(nil)"
	}
	if p.v != nil {
		return fmt.Sprintf("Point(%d:%x)", p.id, p.v)
	}
	return fmt.Sprintf("Point(%d:%x,%x)", p.id, p.x, p.y)
}

// MarshalBinary encodes the point as its group ID byte followed by the
// canonical fixed-width element encoding.
func (p *Point) MarshalBinary() ([]byte, error) {
	if p == nil || (p.v == nil && p.x == nil) {
		return nil, errors.New("group: marshal of invalid point")
	}
	b, err := byID(p.id)
	if err != nil {
		return nil, err
	}
	return append([]byte{byte(p.id)}, b.EncodeElement(p)...), nil
}

// UnmarshalBinary decodes a self-describing point. Structural validation
// (length, range, on-curve) always happens here; Z_p* subgroup membership
// is deferred to IsElement, matching the batch verifiers' cost model.
func (p *Point) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return ErrBadLength
	}
	b, err := byID(GroupID(data[0]))
	if err != nil {
		return err
	}
	dec, err := b.decodeElementLax(data[1:])
	if err != nil {
		return err
	}
	*p = *dec
	return nil
}

// GobEncode implements gob.GobEncoder with the MarshalBinary format, so
// protocol messages carrying elements are self-describing on the wire.
func (p *Point) GobEncode() ([]byte, error) { return p.MarshalBinary() }

// GobDecode implements gob.GobDecoder.
func (p *Point) GobDecode(data []byte) error { return p.UnmarshalBinary(data) }

// Term is one base^exp factor of a MultiExp product.
type Term struct {
	Base *Point
	Exp  *Scalar
}

// Group is a prime-order group with the operations the DL-based
// primitives need: exponentiation (with fixed-base precomputation and
// multi-exponentiation for batch verification), scalar-field arithmetic,
// hashing onto the group and the scalar field (the random oracles of the
// paper's proofs), and canonical encodings.
//
// All implementations are safe for concurrent use: the engine's verify
// worker pool shares one Group, and no method mutates its arguments.
type Group interface {
	// Name identifies the parameter set (e.g. "modp2048", "p256").
	Name() string
	// ID is the one-byte wire identifier of the parameter set.
	ID() GroupID
	// ElementLen reports the fixed byte length of a canonical element
	// encoding (without the wire ID prefix).
	ElementLen() int
	// ScalarLen reports the fixed byte length of an encoded scalar.
	ScalarLen() int
	// Generator returns the group's generator. The returned pointer is
	// stable for the lifetime of the group, so batch verifiers may
	// aggregate exponents on it by pointer identity.
	Generator() *Point
	// Identity returns the neutral element.
	Identity() *Point

	// RandomScalar draws a uniform scalar in [0, order) from rnd.
	RandomScalar(rnd io.Reader) (*Scalar, error)
	// RandomElement draws a uniform non-identity element from rnd.
	RandomElement(rnd io.Reader) (*Point, error)
	// NewScalar returns the scalar v mod order (v may be negative).
	NewScalar(v int64) *Scalar
	// ScalarFromBytes interprets b as a big-endian integer and reduces
	// it mod order (for batch randomizers and wide hash outputs).
	ScalarFromBytes(b []byte) *Scalar
	// AddScalar returns a+b mod order.
	AddScalar(a, b *Scalar) *Scalar
	// SubScalar returns a-b mod order.
	SubScalar(a, b *Scalar) *Scalar
	// MulScalar returns a*b mod order.
	MulScalar(a, b *Scalar) *Scalar
	// InvScalar returns the multiplicative inverse of a mod order.
	InvScalar(a *Scalar) *Scalar
	// NegScalar returns -a mod order.
	NegScalar(a *Scalar) *Scalar
	// IsScalar reports whether s is a valid scalar of this group.
	IsScalar(s *Scalar) bool
	// HashToScalar hashes arbitrary data to a scalar, standing in for
	// the random oracles of the Fiat-Shamir proofs. Inputs are
	// length-framed; domain separates use sites.
	HashToScalar(domain string, data ...[]byte) *Scalar
	// EncodeScalar serializes a scalar into fixed-width bytes.
	EncodeScalar(s *Scalar) []byte
	// DecodeScalar parses and validates a fixed-width scalar.
	DecodeScalar(b []byte) (*Scalar, error)

	// BaseExp returns Generator^e via fixed-base precomputation.
	BaseExp(e *Scalar) *Point
	// Exp returns base^e. Bases registered with Precompute (pointer
	// identity) take a fixed-base fast path where the backend has one.
	Exp(base *Point, e *Scalar) *Point
	// Mul returns the group operation a·b.
	Mul(a, b *Point) *Point
	// Inv returns the inverse of a.
	Inv(a *Point) *Point
	// Div returns a·b^-1.
	Div(a, b *Point) *Point
	// MulExp returns a^x · b^y, the simultaneous double exponentiation
	// of Chaum-Pedersen verification.
	MulExp(a *Point, x *Scalar, b *Point, y *Scalar) *Point
	// MultiExp returns Π base^exp over the terms, the workhorse of
	// random-linear-combination batch verification. Zero exponents are
	// skipped; an empty product is the identity.
	MultiExp(terms []Term) *Point
	// Precompute registers a fixed-base table for a long-lived base
	// (dealt verification keys, public keys). Backends without
	// per-base tables treat it as a no-op.
	Precompute(base *Point)
	// IsElement reports whether p is a member of this group. Points
	// produced by group arithmetic or strict decoding are known
	// members; laxly decoded Z_p* points pay a Jacobi test here.
	IsElement(p *Point) bool
	// HashToPoint hashes arbitrary data onto the group, standing in
	// for the random oracle H' of the coin-tossing scheme.
	HashToPoint(domain string, data ...[]byte) *Point
	// EncodeElement serializes an element into canonical fixed-width
	// bytes (no group ID prefix; this is the hash-input encoding and,
	// for the Z_p* backend, byte-identical to the pre-interface wire
	// format).
	EncodeElement(p *Point) []byte
	// DecodeElement parses and fully validates a canonical element.
	DecodeElement(b []byte) (*Point, error)
}

// backend extends Group with the package-internal decoding hooks the
// self-describing Scalar/Point codecs dispatch to.
type backend interface {
	Group
	// decodeElementLax validates structure (length, range, on-curve)
	// but may defer the subgroup membership test to IsElement.
	decodeElementLax(b []byte) (*Point, error)
}

// WireEncodeElement encodes an element with its one-byte group ID
// prefix — the self-describing form protocol payloads carry.
func WireEncodeElement(p *Point) ([]byte, error) { return p.MarshalBinary() }

// WireDecodeElement decodes a self-describing element for the given
// group, rejecting encodings of any other group with ErrGroupMismatch
// and fully validating membership.
func WireDecodeElement(g Group, b []byte) (*Point, error) {
	if len(b) < 1 {
		return nil, ErrBadLength
	}
	if GroupID(b[0]) != g.ID() {
		if _, err := byID(GroupID(b[0])); err != nil {
			return nil, err
		}
		return nil, ErrGroupMismatch
	}
	return g.DecodeElement(b[1:])
}

// WireEncodeScalar encodes a scalar with its one-byte group ID prefix.
func WireEncodeScalar(s *Scalar) ([]byte, error) { return s.MarshalBinary() }

// WireDecodeScalar decodes a self-describing scalar for the given group,
// rejecting encodings of any other group with ErrGroupMismatch.
func WireDecodeScalar(g Group, b []byte) (*Scalar, error) {
	if len(b) < 1 {
		return nil, ErrBadLength
	}
	if GroupID(b[0]) != g.ID() {
		if _, err := byID(GroupID(b[0])); err != nil {
			return nil, err
		}
		return nil, ErrGroupMismatch
	}
	return g.DecodeScalar(b[1:])
}

// ByName looks a parameter set up by its name, for configuration files.
func ByName(name string) (Group, error) {
	switch name {
	case NameMODP2048:
		return modp2048Group, nil
	case NameTest512:
		return test512Group, nil
	case NameTest256:
		return test256Group, nil
	case NameP256:
		return p256Group, nil
	default:
		return nil, fmt.Errorf("group: unknown parameter set %q", name)
	}
}

// byID resolves a wire group ID to its backend.
func byID(id GroupID) (backend, error) {
	switch id {
	case IDModp2048:
		return modp2048Group, nil
	case IDTest512:
		return test512Group, nil
	case IDTest256:
		return test256Group, nil
	case IDP256:
		return p256Group, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownGroup, id)
	}
}

// MODP2048 returns the production 2048-bit Z_p* group.
func MODP2048() Group { return modp2048Group }

// Test512 returns the 512-bit Z_p* testing group.
func Test512() Group { return test512Group }

// Test256 returns the 256-bit Z_p* testing group.
func Test256() Group { return test256Group }

// P256 returns the NIST P-256 elliptic-curve group.
func P256() Group { return p256Group }

// TestDefaultName resolves the group name protocol tests and simulated
// deployments default to: the SINTRA_GROUP environment variable when
// set (the CI backend matrix sets it), otherwise the fast test-sized
// Z_p* group. "modp2048" selects the Z_p* backend at test-sized
// parameters — the matrix exercises backend code, not 2048-bit latency.
func TestDefaultName() string {
	switch os.Getenv("SINTRA_GROUP") {
	case NameP256:
		return NameP256
	case NameTest512:
		return NameTest512
	default:
		return NameTest256
	}
}

// TestDefault returns the group named by TestDefaultName.
func TestDefault() Group {
	g, err := ByName(TestDefaultName())
	if err != nil {
		panic(err) // unreachable: TestDefaultName returns known names
	}
	return g
}

// Zp exposes the legacy *big.Int arithmetic engine behind a Z_p*-backed
// Group, or nil for other backends.
//
// Deprecated: the big.Int view exists for one release to ease migration;
// use the Scalar/Point API.
func Zp(g Group) *ZpGroup {
	if m, ok := g.(*modpGroup); ok {
		return m.zp
	}
	return nil
}
