package rbc_test

// Regression tests for three RBC resource/liveness bugs:
//
//  1. Unbounded payload retention: onEcho used to store every distinct
//     valid payload it ever saw, so one Byzantine party could pin
//     arbitrarily many buffers. Fixed by first-vote-per-party counting,
//     support-based pruning, and a hard per-instance cap.
//  2. Unsolicited ANS acceptance: onAns used to store (and deliver from)
//     any digest-matching payload, whether or not a fetch was
//     outstanding and regardless of who answered. Fixed by gating on
//     requested && !delivered and on membership in the REQ target set.
//  3. REQ stall: the payload fetch was a single unretried round of REQs,
//     so one lost ANS wedged the instance forever. Fixed by a rotating
//     retry timer over the vouching set.

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/rbc"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

type rawPayload struct{ Payload []byte }
type rawDigest struct{ Digest [32]byte }

// inject sends a raw protocol message from a corrupted party's endpoint.
func inject(c *testutil.Cluster, from, to int, instance, msgType string, body any) {
	c.Net.Endpoint(from).Send(wire.Message{
		To: to, Protocol: rbc.Protocol, Instance: instance,
		Type: msgType, Payload: wire.MustMarshalBody(body),
	})
}

// payloadsHeld reads PayloadsHeld on the dispatch goroutine.
func payloadsHeld(r *engine.Router, inst *rbc.RBC) int {
	held := -1
	// DoSync fails only after router shutdown; -1 then fails the caller.
	_ = r.DoSync(func() { held = inst.PayloadsHeld() })
	return held
}

// TestPayloadRetentionBounded floods one honest party with distinct ECHO
// payloads from every corrupted party. Pre-fix each distinct payload was
// retained (150 buffers here); post-fix at most one payload per voting
// party survives, and the instance still delivers once honest support
// arrives. Fails against the pre-fix RBC.
func TestPayloadRetentionBounded(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2, Corrupted: []int{0, 2, 3}})
	col := newCollector(4)
	instance := rbc.InstanceID(0, "flood")
	inst := newRBC(rbc.Config{
		Router:   c.Routers[1],
		Struct:   c.Struct,
		Instance: instance,
		Sender:   0,
		Deliver:  col.deliverFn(1),
	})
	const perParty = 50
	for _, from := range []int{0, 2, 3} {
		for i := 0; i < perParty; i++ {
			inject(c, from, 1, instance, "ECHO",
				rawPayload{[]byte(fmt.Sprintf("distinct-%d-%d", from, i))})
		}
	}
	// Wait until the flood has demonstrably been processed (at least one
	// buffer retained), then watch the high-water mark for a while: one
	// echo per party counts, so 3 flooding parties can pin at most 3
	// distinct buffers no matter how many payloads each invents.
	maxHeld := 0
	deadline := time.Now().Add(10 * time.Second)
	for maxHeld < 1 && time.Now().Before(deadline) {
		if h := payloadsHeld(c.Routers[1], inst); h > maxHeld {
			maxHeld = h
		}
		time.Sleep(10 * time.Millisecond)
	}
	if maxHeld < 1 {
		t.Fatal("flood never processed")
	}
	for i := 0; i < 50; i++ {
		if h := payloadsHeld(c.Routers[1], inst); h > maxHeld {
			maxHeld = h
		}
		time.Sleep(5 * time.Millisecond)
	}
	if maxHeld > 3 {
		t.Fatalf("retained %d payload buffers from 3 flooding parties", maxHeld)
	}

	// The instance must still be live: the (Byzantine) sender belatedly
	// converges on one payload; party 1 echoes it and the READY quorum
	// delivers it.
	msg := []byte("converged payload")
	d := sha256.Sum256(msg)
	inject(c, 0, 1, instance, "SEND", rawPayload{msg})
	for _, from := range []int{0, 2, 3} {
		inject(c, from, 1, instance, "READY", rawDigest{d})
	}
	got := col.waitAll(t, []int{1})
	if !bytes.Equal(got[1], msg) {
		t.Fatalf("delivered %q", got[1])
	}
	// After delivery only the delivered payload is retained.
	if h := payloadsHeld(c.Routers[1], inst); h != 1 {
		t.Fatalf("post-delivery retention: %d buffers", h)
	}
}

// TestUnsolicitedAnsIgnored drives both ANS gates: an ANS before any REQ
// is outstanding must not be stored, and an ANS from a party outside the
// REQ target set must not deliver even when its payload matches the
// wanted digest. Fails against the pre-fix RBC (which accepted both).
func TestUnsolicitedAnsIgnored(t *testing.T) {
	st := adversary.MustThreshold(5, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 4, Corrupted: []int{0, 2, 3, 4}})
	col := newCollector(5)
	instance := rbc.InstanceID(0, "ans")
	inst := newRBC(rbc.Config{
		Router:        c.Routers[1],
		Struct:        c.Struct,
		Instance:      instance,
		Sender:        0,
		Deliver:       col.deliverFn(1),
		RetryInterval: -1, // keep the REQ target set fixed for the test
	})

	// Gate 1: no fetch is outstanding, so an ANS must vanish without a
	// trace — not even stored as a speculative buffer.
	inject(c, 0, 1, instance, "ANS", rawPayload{[]byte("stray answer")})
	time.Sleep(300 * time.Millisecond)
	if h := payloadsHeld(c.Routers[1], inst); h != 0 {
		t.Fatalf("unsolicited ANS was stored (%d buffers held)", h)
	}

	// Gate 2: parties 2,3,4 vouch for digest d via READY (2t+1 = strong),
	// so party 1 opens a fetch targeted at exactly {2,3,4}.
	msg := []byte("the payload behind the digest")
	d := sha256.Sum256(msg)
	for _, from := range []int{2, 3, 4} {
		inject(c, from, 1, instance, "READY", rawDigest{d})
	}
	// Party 0 — which never vouched and was never asked — answers with
	// the correct payload. It must be ignored.
	inject(c, 0, 1, instance, "ANS", rawPayload{msg})
	select {
	case dlv := <-col.ch:
		t.Fatalf("delivered %q from an answer outside the REQ target set", dlv.payload)
	case <-time.After(500 * time.Millisecond):
	}
	// An answer from a targeted voucher still works.
	inject(c, 2, 1, instance, "ANS", rawPayload{msg})
	got := col.waitAll(t, []int{1})
	if !bytes.Equal(got[1], msg) {
		t.Fatalf("delivered %q", got[1])
	}
}

// TestReqRetryRecoversLostAns wedges the payload fetch: every voucher
// stays silent after the first round of REQs (models a lossy link eating
// the ANS), and the test only answers after it has observed retries.
// Pre-fix there were no retries — the instance stalled forever and this
// test times out. Fails against the pre-fix RBC.
func TestReqRetryRecoversLostAns(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 6, Corrupted: []int{0, 2, 3}})
	col := newCollector(4)
	instance := rbc.InstanceID(0, "stall")
	newRBC(rbc.Config{
		Router:        c.Routers[1],
		Struct:        c.Struct,
		Instance:      instance,
		Sender:        0,
		Deliver:       col.deliverFn(1),
		RetryInterval: 40 * time.Millisecond,
	})

	// Count REQs arriving at the silent vouchers.
	reqs := make(chan int, 64)
	for _, ep := range []int{0, 2, 3} {
		ep := ep
		go func() {
			tr := c.Net.Endpoint(ep)
			for {
				m, ok := tr.Recv()
				if !ok {
					return
				}
				if m.Protocol == rbc.Protocol && m.Type == "REQ" {
					reqs <- ep
				}
			}
		}()
	}

	msg := []byte("eventually fetched")
	d := sha256.Sum256(msg)
	for _, from := range []int{0, 2, 3} {
		inject(c, from, 1, instance, "READY", rawDigest{d})
	}
	// First round: one REQ per voucher. Then the rotating retry must keep
	// re-asking — wait for at least two retry REQs beyond the burst.
	seen := 0
	deadline := time.After(15 * time.Second)
	for seen < 5 {
		select {
		case <-reqs:
			seen++
		case <-deadline:
			t.Fatalf("fetch stalled: only %d REQs observed (no retries)", seen)
		}
	}
	// Now answer from a voucher; the instance must recover and deliver.
	inject(c, 2, 1, instance, "ANS", rawPayload{msg})
	got := col.waitAll(t, []int{1})
	if !bytes.Equal(got[1], msg) {
		t.Fatalf("delivered %q", got[1])
	}
}
