package rbc

import "sintra/internal/wire"

// unmarshal decodes a message body, tolerating malformed input from
// corrupted parties.
func unmarshal(data []byte, v any) error {
	return wire.UnmarshalBody(data, v)
}
