package rbc_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/faultsim"
	"sintra/internal/rbc"
	"sintra/internal/rs"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// startCodedInstances wires one coded-capable RBC instance per party.
func startCodedInstances(c *testutil.Cluster, col *collector, sender int, tag string, threshold int, parties []int) map[int]*rbc.RBC {
	out := make(map[int]*rbc.RBC, len(parties))
	for _, i := range parties {
		out[i] = newRBC(rbc.Config{
			Router:         c.Routers[i],
			Struct:         c.Struct,
			Instance:       rbc.InstanceID(sender, tag),
			Sender:         sender,
			Deliver:        col.deliverFn(i),
			CodedThreshold: threshold,
		})
	}
	return out
}

// TestCodedBroadcastDelivers: above the threshold the sender disperses
// fragments instead of the payload, and every honest party reconstructs
// the identical bytes.
func TestCodedBroadcastDelivers(t *testing.T) {
	for _, n := range []int{4, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			st := adversary.MustThreshold(n, (n-1)/3)
			c := testutil.NewCluster(t, st, testutil.Options{Seed: 9, Observe: true})
			col := newCollector(n)
			insts := startCodedInstances(c, col, 0, "coded", 1024, allParties(n))
			msg := make([]byte, 48*1024)
			rand.New(rand.NewSource(int64(n))).Read(msg)
			if err := insts[0].Start(msg); err != nil {
				t.Fatal(err)
			}
			got := col.waitAll(t, allParties(n))
			for p, payload := range got {
				if !bytes.Equal(payload, msg) {
					t.Fatalf("party %d delivered wrong bytes", p)
				}
			}
			if v := c.Regs[0].Counter("rs.encodes").Value(); v < 1 {
				t.Fatalf("sender never erasure-coded (rs.encodes=%d)", v)
			}
			// Every party (including the sender, which holds only its own
			// fragment) reconstructs rather than receiving full payloads.
			for i := 0; i < n; i++ {
				if v := c.Regs[i].Counter("rbc.coded.reconstructs").Value(); v < 1 {
					t.Fatalf("party %d never reconstructed", i)
				}
			}
		})
	}
}

// TestCodedThresholdGatesPath: payloads under the threshold (or with the
// feature off) take the plain SEND/ECHO path.
func TestCodedThresholdGatesPath(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 10, Observe: true})
	col := newCollector(4)
	insts := startCodedInstances(c, col, 1, "small", 4096, allParties(4))
	msg := []byte("short payload stays plain")
	if err := insts[1].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, allParties(4))
	for _, p := range got {
		if !bytes.Equal(p, msg) {
			t.Fatal("wrong payload")
		}
	}
	if v := c.Regs[1].Counter("rs.encodes").Value(); v != 0 {
		t.Fatalf("sub-threshold payload was erasure-coded (rs.encodes=%d)", v)
	}
}

// fragLeafForTest mirrors the protocol's Merkle leaf preimage:
// uint64 payload length, uint32 fragment index, then the shard bytes.
func fragLeafForTest(payLen, index int, shard []byte) []byte {
	leaf := make([]byte, 12+len(shard))
	binary.BigEndian.PutUint64(leaf, uint64(payLen))
	binary.BigEndian.PutUint32(leaf[8:], uint32(index))
	copy(leaf[12:], shard)
	return leaf
}

type rawFrag struct {
	Root   [32]byte
	Index  int
	PayLen int
	Shard  []byte
	Branch [][32]byte
}

// TestCodedInconsistentSenderNoDelivery: a Byzantine sender commits to a
// Merkle tree over shards that are NOT a consistent codeword. Every
// fragment verifies individually, the echo quorum and READY amplification
// all fire — but reconstruction re-encodes, detects the root mismatch,
// and no honest party delivers anything.
func TestCodedInconsistentSenderNoDelivery(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 12, Observe: true, Corrupted: []int{0}})
	col := newCollector(4)
	startCodedInstances(c, col, 0, "byz", 1024, []int{1, 2, 3})

	// k = n-2t = 2: shard length for a 128-byte payload is 64. Four
	// independent random shards cannot be a codeword of any payload.
	const payLen = 128
	rng := rand.New(rand.NewSource(99))
	shards := make([][]byte, 4)
	leaves := make([][]byte, 4)
	for i := range shards {
		shards[i] = make([]byte, 64)
		rng.Read(shards[i])
		leaves[i] = fragLeafForTest(payLen, i, shards[i])
	}
	tree := rs.NewTree(leaves)
	instance := rbc.InstanceID(0, "byz")
	for j := 1; j < 4; j++ {
		c.Net.Endpoint(0).Send(wire.Message{
			To: j, Protocol: rbc.Protocol, Instance: instance, Type: "FRAG",
			Payload: wire.MustMarshalBody(rawFrag{
				Root: tree.Root(), Index: j, PayLen: payLen,
				Shard: shards[j], Branch: tree.Branch(j),
			}),
		})
	}
	select {
	case d := <-col.ch:
		t.Fatalf("party %d delivered from an inconsistent encoding", d.party)
	case <-time.After(700 * time.Millisecond):
	}
	invalid := int64(0)
	for _, i := range []int{1, 2, 3} {
		invalid += c.Regs[i].Counter("rbc.coded.invalid").Value()
	}
	if invalid == 0 {
		t.Fatal("no party flagged the inconsistent root")
	}

	// The routers survived the attack: a fresh honest coded broadcast on
	// the same cluster still delivers.
	col2 := newCollector(4)
	insts := startCodedInstances(c, col2, 1, "after", 1024, []int{1, 2, 3})
	msg := bytes.Repeat([]byte{0x5a}, 8*1024)
	if err := insts[1].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col2.waitAll(t, []int{1, 2, 3})
	for _, p := range got {
		if !bytes.Equal(p, msg) {
			t.Fatal("wrong payload after attack")
		}
	}
}

// TestCodedChaosFaultsim runs coded broadcasts while party 1 executes the
// honest code over a transport that equivocates, mutates, and drops its
// traffic. The honest parties must deliver identical histories for every
// instance, and no router may absorb a handler panic.
func TestCodedChaosFaultsim(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 31, Observe: true, Corrupted: []int{1}})
	byzTr := faultsim.Wrap(c.Net.Endpoint(1), 31,
		faultsim.Equivocate(), faultsim.Mutate(0.35), faultsim.Drop(0.25))
	byzRouter := engine.NewRouter(byzTr)
	routerDone := make(chan struct{})
	go func() { defer close(routerDone); byzRouter.Run() }()
	t.Cleanup(func() { c.Stop(); <-routerDone })

	honest := []int{0, 2, 3}
	const rounds = 3
	rng := rand.New(rand.NewSource(8))
	for k := 0; k < rounds; k++ {
		tag := fmt.Sprintf("chaos%d", k)
		col := newCollector(4)
		insts := startCodedInstances(c, col, 0, tag, 512, honest)
		byzRouter.DoSync(func() {
			rbc.New(rbc.Config{
				Router:         byzRouter,
				Struct:         st,
				Instance:       rbc.InstanceID(0, tag),
				Sender:         0,
				Deliver:        col.deliverFn(1),
				CodedThreshold: 512,
			})
		})
		msg := make([]byte, 4096+rng.Intn(16384))
		rng.Read(msg)
		if err := insts[0].Start(msg); err != nil {
			t.Fatal(err)
		}
		got := col.waitAll(t, honest)
		for p, payload := range got {
			if !bytes.Equal(payload, msg) {
				t.Fatalf("round %d: party %d diverged from the honest sender", k, p)
			}
		}
	}
	for _, i := range honest {
		if v := c.Regs[i].Counter("router.panics").Value(); v != 0 {
			t.Fatalf("party %d absorbed %d handler panics", i, v)
		}
	}
}
