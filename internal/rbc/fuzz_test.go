package rbc_test

import (
	"fmt"
	"testing"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/netsim"
	"sintra/internal/rbc"
	"sintra/internal/wire"
)

// FuzzFragmentDecode drives the coded-ECHO wire path with adversarial
// bytes: both raw garbage (exercising body decoding) and structurally
// valid fragBody messages with fuzzer-chosen fields (exercising shape
// checks and Merkle branch verification). The handler must never panic
// and must never deliver — a forged fragment cannot carry a verifying
// branch for an uncommitted root.
func FuzzFragmentDecode(f *testing.F) {
	st := adversary.MustThreshold(4, 1)
	net := netsim.New(4, 0, netsim.NewRandomScheduler(1))
	router := engine.NewRouter(net.Endpoint(1))
	f.Cleanup(net.Stop)

	f.Add([]byte("not a gob stream"), uint8(2), int16(3), int32(100), []byte("shardish"), []byte{})
	f.Add([]byte{}, uint8(0), int16(-1), int32(-5), []byte{}, make([]byte, 64))
	f.Add([]byte{0xff, 0x00, 0x01}, uint8(3), int16(2), int32(1<<20), make([]byte, 33), make([]byte, 95))

	iter := 0
	f.Fuzz(func(t *testing.T, raw []byte, from8 uint8, index int16, payLen int32, shard, branchBytes []byte) {
		iter++
		instance := rbc.InstanceID(2, fmt.Sprintf("fz%d", iter))
		delivered := false
		inst := rbc.New(rbc.Config{
			Router:   router,
			Struct:   st,
			Instance: instance,
			Sender:   2,
			Deliver:  func([]byte) { delivered = true },
		})
		// The router is not running: drive the handler directly, as the
		// dispatch goroutine would.
		from := int(from8 % 4)
		inst.Handle(from, "CECHO", raw)
		inst.Handle(2, "FRAG", raw)

		// A structurally valid fragment with adversarial field values.
		var root [32]byte
		copy(root[:], raw)
		branch := make([][32]byte, 0, len(branchBytes)/32)
		for i := 0; i+32 <= len(branchBytes); i += 32 {
			var h [32]byte
			copy(h[:], branchBytes[i:i+32])
			branch = append(branch, h)
		}
		body := wire.MustMarshalBody(struct {
			Root   [32]byte
			Index  int
			PayLen int
			Shard  []byte
			Branch [][32]byte
		}{root, int(index), int(payLen), shard, branch})
		inst.Handle(from, "CECHO", body)
		inst.Handle(2, "FRAG", body)
		// And the same bytes on the plain-path message types.
		inst.Handle(from, "ECHO", raw)
		inst.Handle(from, "READY", body)
		inst.Handle(from, "ANS", raw)

		if delivered {
			t.Fatal("forged fragment stream reached delivery")
		}
		if inst.PayloadsHeld() > 8 {
			t.Fatalf("retention cap breached: %d buffers", inst.PayloadsHeld())
		}
		router.Unregister(rbc.Protocol, instance)
		if iter%1024 == 0 {
			router.CompactTombstones(func(string, string) bool { return true })
		}
	})
}
