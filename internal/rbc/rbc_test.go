package rbc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/netsim"
	"sintra/internal/rbc"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// collector gathers one delivery per party with a timeout.
type collector struct {
	n  int
	ch chan delivery
}

type delivery struct {
	party   int
	payload []byte
}

func newCollector(n int) *collector {
	return &collector{n: n, ch: make(chan delivery, n*4)}
}

func (c *collector) deliverFn(party int) func([]byte) {
	return func(p []byte) { c.ch <- delivery{party: party, payload: p} }
}

// waitAll returns the payload delivered by each listed party, failing the
// test on timeout.
func (c *collector) waitAll(t *testing.T, parties []int) map[int][]byte {
	t.Helper()
	want := make(map[int]bool, len(parties))
	for _, p := range parties {
		want[p] = true
	}
	got := make(map[int][]byte, len(parties))
	deadline := time.After(30 * time.Second)
	for len(got) < len(parties) {
		select {
		case d := <-c.ch:
			if want[d.party] {
				if _, dup := got[d.party]; dup {
					t.Fatalf("party %d delivered twice", d.party)
				}
				got[d.party] = d.payload
			}
		case <-deadline:
			t.Fatalf("timeout: %d of %d deliveries", len(got), len(parties))
		}
	}
	return got
}

// newRBC creates an instance on the router's dispatch goroutine, as the
// engine contract requires once routers are running.
func newRBC(cfg rbc.Config) *rbc.RBC {
	var inst *rbc.RBC
	cfg.Router.DoSync(func() { inst = rbc.New(cfg) })
	return inst
}

func startInstances(c *testutil.Cluster, col *collector, sender int, tag string, parties []int) map[int]*rbc.RBC {
	out := make(map[int]*rbc.RBC, len(parties))
	for _, i := range parties {
		out[i] = newRBC(rbc.Config{
			Router:   c.Routers[i],
			Struct:   c.Struct,
			Instance: rbc.InstanceID(sender, tag),
			Sender:   sender,
			Deliver:  col.deliverFn(i),
		})
	}
	return out
}

func allParties(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestBroadcastAllHonest(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	col := newCollector(4)
	insts := startInstances(c, col, 0, "m1", allParties(4))
	msg := []byte("hello reliable broadcast")
	if err := insts[0].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, allParties(4))
	for p, payload := range got {
		if !bytes.Equal(payload, msg) {
			t.Fatalf("party %d delivered %q", p, payload)
		}
	}
}

func TestBroadcastWithCrashedParty(t *testing.T) {
	// Party 3 is crashed: it runs no protocol instance at all.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 7})
	col := newCollector(4)
	insts := startInstances(c, col, 1, "m", []int{0, 1, 2})
	msg := []byte("progress despite a crash")
	if err := insts[1].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, []int{0, 1, 2})
	for _, payload := range got {
		if !bytes.Equal(payload, msg) {
			t.Fatal("wrong payload")
		}
	}
}

func TestNonSenderCannotStart(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	inst := newRBC(rbc.Config{
		Router:   c.Routers[1],
		Struct:   c.Struct,
		Instance: rbc.InstanceID(0, "m"),
		Sender:   0,
	})
	if err := inst.Start([]byte("x")); err == nil {
		t.Fatal("non-sender started broadcast")
	}
}

// equivocatingSender implements a corrupted sender that sends different
// payloads to different parties.
func TestEquivocatingSenderAgreement(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 3})
	col := newCollector(4)
	// Honest parties 1..3 run the protocol; party 0 is corrupted.
	startInstances(c, col, 0, "eq", []int{1, 2, 3})
	// The corrupted sender sends SEND(a) to 1 and 2, SEND(b) to 3.
	instance := rbc.InstanceID(0, "eq")
	sendRaw := func(to int, payload []byte) {
		body := wire.MustMarshalBody(struct{ Payload []byte }{payload})
		c.Net.Endpoint(0).Send(wire.Message{
			To: to, Protocol: rbc.Protocol, Instance: instance,
			Type: "SEND", Payload: body,
		})
	}
	sendRaw(1, []byte("aaa"))
	sendRaw(2, []byte("aaa"))
	sendRaw(3, []byte("bbb"))
	// With one corrupted sender and three honest parties, the honest
	// parties either all deliver the same payload or none delivers.
	timeout := time.After(5 * time.Second)
	var delivered []delivery
loop:
	for {
		select {
		case d := <-col.ch:
			delivered = append(delivered, d)
			if len(delivered) == 3 {
				break loop
			}
		case <-timeout:
			break loop
		}
	}
	if len(delivered) > 0 && len(delivered) < 3 {
		// Partial delivery is allowed only transiently; wait for the rest.
		deadline := time.After(30 * time.Second)
		for len(delivered) < 3 {
			select {
			case d := <-col.ch:
				delivered = append(delivered, d)
			case <-deadline:
				t.Fatalf("totality violated: only %d honest parties delivered", len(delivered))
			}
		}
	}
	for i := 1; i < len(delivered); i++ {
		if !bytes.Equal(delivered[i].payload, delivered[0].payload) {
			t.Fatalf("agreement violated: %q vs %q", delivered[i].payload, delivered[0].payload)
		}
	}
}

func TestPredicateBlocksInvalidPayload(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	col := newCollector(4)
	for i := 0; i < 4; i++ {
		newRBC(rbc.Config{
			Router:    c.Routers[i],
			Struct:    c.Struct,
			Instance:  rbc.InstanceID(0, "p"),
			Sender:    0,
			Deliver:   col.deliverFn(i),
			Predicate: func(p []byte) bool { return len(p) < 4 },
		})
	}
	// Sender is honest but its payload violates the predicate everywhere:
	// nobody must deliver.
	body := wire.MustMarshalBody(struct{ Payload []byte }{[]byte("too long payload")})
	for to := 0; to < 4; to++ {
		c.Net.Endpoint(0).Send(wire.Message{
			To: to, Protocol: rbc.Protocol, Instance: rbc.InstanceID(0, "p"),
			Type: "SEND", Payload: body,
		})
	}
	select {
	case d := <-col.ch:
		t.Fatalf("party %d delivered invalid payload", d.party)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestInterleavedBroadcasts(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 11})
	const perSender = 3
	type key struct {
		party int
		msg   string
	}
	var mu sync.Mutex
	got := make(map[key]bool)
	total := 4 * 4 * perSender
	done := make(chan struct{}, total)

	senders := make(map[string]*rbc.RBC)
	for sender := 0; sender < 4; sender++ {
		for k := 0; k < perSender; k++ {
			tag := fmt.Sprintf("b%d", k)
			for i := 0; i < 4; i++ {
				i := i
				inst := newRBC(rbc.Config{
					Router:   c.Routers[i],
					Struct:   c.Struct,
					Instance: rbc.InstanceID(sender, tag),
					Sender:   sender,
					Deliver: func(p []byte) {
						mu.Lock()
						got[key{party: i, msg: string(p)}] = true
						mu.Unlock()
						done <- struct{}{}
					},
				})
				if i == sender {
					senders[fmt.Sprintf("%d/%s", sender, tag)] = inst
				}
			}
		}
	}
	for sender := 0; sender < 4; sender++ {
		for k := 0; k < perSender; k++ {
			msg := fmt.Sprintf("msg-%d-%d", sender, k)
			if err := senders[fmt.Sprintf("%d/b%d", sender, k)].Start([]byte(msg)); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.After(60 * time.Second)
	for i := 0; i < total; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("timeout after %d of %d deliveries", i, total)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for sender := 0; sender < 4; sender++ {
		for k := 0; k < perSender; k++ {
			msg := fmt.Sprintf("msg-%d-%d", sender, k)
			for i := 0; i < 4; i++ {
				if !got[key{party: i, msg: msg}] {
					t.Fatalf("party %d missed %q", i, msg)
				}
			}
		}
	}
}

func TestInstanceIDRoundTrip(t *testing.T) {
	id := rbc.InstanceID(7, "abc/r1")
	sender, err := rbc.SenderOf(id)
	if err != nil || sender != 7 {
		t.Fatalf("SenderOf = %d, %v", sender, err)
	}
	if _, err := rbc.SenderOf("garbage"); err == nil {
		t.Fatal("malformed instance accepted")
	}
	if _, err := rbc.SenderOf("x/tag"); err == nil {
		t.Fatal("non-numeric sender accepted")
	}
}

func TestGeneralStructureBroadcast(t *testing.T) {
	// Example 1 structure with all of class a (4 of 9 servers) crashed.
	st := adversary.Example1()
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5})
	col := newCollector(9)
	honest := []int{4, 5, 6, 7, 8}
	insts := startInstances(c, col, 4, "g", honest)
	msg := []byte("survives a whole class failure")
	if err := insts[4].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, honest)
	for _, p := range got {
		if !bytes.Equal(p, msg) {
			t.Fatal("wrong payload")
		}
	}
}

func TestLargePayloadDelivery(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	col := newCollector(4)
	insts := startInstances(c, col, 2, "big", allParties(4))
	msg := bytes.Repeat([]byte{0xAB}, 64*1024)
	if err := insts[2].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, allParties(4))
	for _, p := range got {
		if !bytes.Equal(p, msg) {
			t.Fatal("wrong large payload")
		}
	}
}

func TestDeliveryUnderAdversarialScheduler(t *testing.T) {
	// Starve all of party 0's outbound traffic: the sender's SEND still
	// reaches everyone eventually, and the others progress meanwhile.
	st := adversary.MustThreshold(4, 1)
	sched := netsim.NewDelayScheduler(13, func(m *wire.Message) bool { return m.From == 0 })
	c := testutil.NewCluster(t, st, testutil.Options{Scheduler: sched})
	col := newCollector(4)
	insts := startInstances(c, col, 0, "slow", allParties(4))
	msg := []byte("eventual delivery")
	if err := insts[0].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, allParties(4))
	for _, p := range got {
		if !bytes.Equal(p, msg) {
			t.Fatal("wrong payload")
		}
	}
}
