package rbc_test

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/faultsim"
	"sintra/internal/rbc"
	"sintra/internal/testutil"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// wiseNaiveTrust is the asymmetric quorum system the per-party trust
// tests run on: four parties where 0, 1, and 2 make the standard
// threshold-1 assumption while 3 assumes only {0,2} can fail together.
//
// Under the actual corruption {1}, parties 0 and 2 are wise (their
// fail-prone system contains {1}) and party 3 is naive; 3's canonical
// quorums include {1,3}, so a Byzantine 1 can single-handedly satisfy
// 3's echo and ready rules. Under the corruption {3}, parties 0, 1, and
// 2 are all wise and form a guild, so they also keep liveness.
func wiseNaiveTrust(t *testing.T) *trust.Asymmetric {
	t.Helper()
	q, err := trust.NewAsymmetric(4, []trust.FailProne{
		trust.Threshold(1),
		trust.Threshold(1),
		trust.Threshold(1),
		trust.General(adversary.SetOf(0, 2)),
	})
	if err != nil {
		t.Fatalf("NewAsymmetric: %v", err)
	}
	return q
}

func startAsymInstances(c *testutil.Cluster, q trust.Quorums, col *collector, sender int, tag string, parties []int) map[int]*rbc.RBC {
	out := make(map[int]*rbc.RBC, len(parties))
	for _, i := range parties {
		out[i] = newRBC(rbc.Config{
			Router:   c.Routers[i],
			Struct:   c.Struct,
			Trust:    q,
			Instance: rbc.InstanceID(sender, tag),
			Sender:   sender,
			Deliver:  col.deliverFn(i),
		})
	}
	return out
}

// TestAsymmetricRBCWiseSafetyNaiveDivergence corrupts party 1 — inside
// the fail-prone systems of 0 and 2 but not of 3 — and drives the worst
// case for the naive party: the Byzantine sender equivocates and then
// single-handedly completes 3's echo quorum and delivery rule for the
// second payload. The wise parties must agree on one payload; the naive
// party demonstrably delivers the other one, and its divergence does not
// drag the wise parties apart.
func TestAsymmetricRBCWiseSafetyNaiveDivergence(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 11, Corrupted: []int{1}})
	q := wiseNaiveTrust(t)
	col := newCollector(4)
	startAsymInstances(c, q, col, 1, "asym", []int{0, 2, 3})

	instance := rbc.InstanceID(1, "asym")
	byz := c.Net.Endpoint(1)
	send := func(to int, msgType string, body any) {
		byz.Send(wire.Message{
			To: to, Protocol: rbc.Protocol, Instance: instance,
			Type: msgType, Payload: wire.MustMarshalBody(body),
		})
	}
	type payloadBody struct{ Payload []byte }
	type digestBody struct{ Digest [32]byte }

	good := []byte("payload for the wise")
	bad := []byte("payload for the naive")
	// Equivocate: the wise parties see `good`, the naive party `bad`.
	send(0, "SEND", payloadBody{good})
	send(2, "SEND", payloadBody{good})
	send(3, "SEND", payloadBody{bad})
	// Complete the wise parties' quorums (they need three echoes and
	// three readys under threshold-1 assumptions).
	send(0, "ECHO", payloadBody{good})
	send(2, "ECHO", payloadBody{good})
	send(0, "READY", digestBody{digest(good)})
	send(2, "READY", digestBody{digest(good)})
	// Single-handedly complete the naive party's rules: {1,3} is an echo
	// quorum, a blocking set, and a delivery quorum in 3's system.
	send(3, "ECHO", payloadBody{bad})
	send(3, "READY", digestBody{digest(bad)})

	got := col.waitAll(t, []int{0, 2, 3})
	if !bytes.Equal(got[0], good) || !bytes.Equal(got[2], good) {
		t.Fatalf("wise parties disagree: 0=%q 2=%q", got[0], got[2])
	}
	if !bytes.Equal(got[3], bad) {
		t.Fatalf("naive party delivered %q, attack expected %q", got[3], bad)
	}
}

// TestAsymmetricRBCGuildLiveness corrupts party 3 by crashing it. All of
// 0, 1, and 2 are wise for this corruption and form a guild, so an
// honest sender's broadcast must still deliver identically at all three
// without any help from 3.
func TestAsymmetricRBCGuildLiveness(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5, Corrupted: []int{3}})
	q := wiseNaiveTrust(t)
	wise := q.WiseSet(adversary.SetOf(3))
	if wise != adversary.SetOf(0, 1, 2) {
		t.Fatalf("wise set for corruption {3}: %v", wise.Members())
	}
	if guild := q.Guild(adversary.SetOf(3)); guild != adversary.SetOf(0, 1, 2) {
		t.Fatalf("guild for corruption {3}: %v", guild.Members())
	}
	col := newCollector(4)
	insts := startAsymInstances(c, q, col, 0, "live", []int{0, 1, 2})
	msg := []byte("guild delivers without the naive party")
	if err := insts[0].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := col.waitAll(t, []int{0, 1, 2})
	for p, payload := range got {
		if !bytes.Equal(payload, msg) {
			t.Fatalf("party %d delivered %q", p, payload)
		}
	}
}

// TestAsymmetricRBCFaultsimEquivocation drives the corruption through
// faultsim: party 1 runs the honest protocol code behind an equivocation
// transport that shows odd-indexed recipients a corrupted copy of every
// message. The sender 0 is honest, so the wise parties 0 and 2 (whose
// fail-prone systems contain {1}) must deliver one identical payload;
// the naive party 3 — whose every quorum contains the equivocator — may
// lose liveness but must never drag the wise parties apart.
func TestAsymmetricRBCFaultsimEquivocation(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 23, Corrupted: []int{1}})
	q := wiseNaiveTrust(t)

	// Party 1 runs the honest code over a two-faced transport.
	byzTr := faultsim.Wrap(c.Net.Endpoint(1), 23, faultsim.Equivocate())
	byzRouter := engine.NewRouter(byzTr)
	routerDone := make(chan struct{})
	go func() { defer close(routerDone); byzRouter.Run() }()
	t.Cleanup(func() { c.Stop(); <-routerDone })

	col := newCollector(4)
	insts := startAsymInstances(c, q, col, 0, "fs", []int{0, 2, 3})
	byzRouter.DoSync(func() {
		rbc.New(rbc.Config{
			Router:   byzRouter,
			Struct:   st,
			Trust:    q,
			Instance: rbc.InstanceID(0, "fs"),
			Sender:   0,
			Deliver:  col.deliverFn(1),
		})
	})
	msg := []byte("wise agreement past a two-faced echoer")
	if err := insts[0].Start(msg); err != nil {
		t.Fatal(err)
	}
	// The wise parties 0 and 2 must deliver the sender's payload;
	// delivery at the naive 3 is not guaranteed under this attack (its
	// quorums hinge on the equivocator), so only the wise pair is
	// awaited.
	got := col.waitAll(t, []int{0, 2})
	if !bytes.Equal(got[0], msg) || !bytes.Equal(got[2], msg) {
		t.Fatalf("wise parties diverged from the honest sender: 0=%q 2=%q", got[0], got[2])
	}

	// Any late delivery from a wise party must match — drain briefly.
	deadline := time.After(200 * time.Millisecond)
	for {
		select {
		case d := <-col.ch:
			if (d.party == 0 || d.party == 2) && !bytes.Equal(d.payload, msg) {
				t.Fatalf("wise party %d re-delivered different payload %q", d.party, d.payload)
			}
		case <-deadline:
			return
		}
	}
}

func digest(p []byte) [32]byte {
	return sha256.Sum256(p)
}
