// Package rbc implements reliable broadcast: an optimized variant of the
// Bracha–Toueg protocol, the basic broadcast primitive of the paper's
// architecture (§3). All honest parties deliver the same set of messages,
// including every message broadcast by an honest sender; nothing is
// guaranteed about delivery order, and a corrupted sender may cause
// agreement on at most one payload (or none).
//
// Optimizations over the textbook protocol: READY messages carry only the
// payload digest, and a party that reaches the delivery condition without
// having seen the payload fetches it from the parties that vouched for it
// (digest-checked), so large payloads travel at most twice per honest
// party pair.
//
// Above a configurable size threshold the sender can switch to coded
// dissemination (AVID-style, after Cachin–Tessaro): the payload is
// erasure-coded into n fragments of which any k = n−2t reconstruct it,
// the sender commits to the encoding with a Merkle root, each party
// receives only its own fragment plus branch and echoes that, and
// delivery reconstructs the payload and re-verifies the recomputed root
// against the commitment before accepting. Per-party traffic drops from
// O(n·B) to O(B·n/k + n·log n) — linear instead of quadratic total — at
// the price of deferring the external-validity predicate from echo time
// to delivery time (a fragment reveals nothing to validate).
//
// Thresholds follow the generalized substitution rules (§4.2): the echo
// quorum is IsQuorum (n−t), READY amplification needs a set that blocks
// every quorum (t+1), and delivery needs the strong rule (2t+1). All
// three are evaluated through a trust.Quorums backend with this party as
// the observer, so the same code runs under the paper's shared adversary
// structure and under asymmetric per-party quorum systems: a wise party
// (one whose fail-prone assumption covers the actual corruption set)
// keeps agreement with every other wise party, because any two wise
// parties' quorums intersect outside the corruption set and an honest
// party sends at most one READY per instance.
package rbc

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/rs"
	"sintra/internal/trust"
)

// Protocol is the wire protocol name of reliable broadcast.
const Protocol = "rbc"

// Message types.
const (
	typeSend  = "SEND"
	typeEcho  = "ECHO"
	typeReady = "READY"
	typeReq   = "REQ"
	typeAns   = "ANS"
	typeFrag  = "FRAG"  // sender → party: that party's coded fragment
	typeCEcho = "CECHO" // party → all: echo of its own fragment
	// typeCommit never travels on the wire: it tags the journal record
	// binding a coded sender to its Merkle-root commitment.
	typeCommit = "COMMIT"
)

// DefaultRetryInterval paces the REQ fetch retry timer when the config
// leaves RetryInterval zero.
const DefaultRetryInterval = 500 * time.Millisecond

// maxStoredPayloads is the hard per-instance cap on distinct payload
// buffers retained before delivery (the support-based retention rule
// prunes first; this bounds the worst case outright).
const maxStoredPayloads = 8

// payloadBody carries a full payload (SEND, ECHO, ANS).
type payloadBody struct {
	Payload []byte
}

// digestBody carries only the payload digest (READY, REQ). For coded
// broadcasts the digest is the sender's Merkle-root commitment.
type digestBody struct {
	Digest [32]byte
}

// fragBody carries one erasure-coded fragment with its Merkle branch
// (FRAG, CECHO).
type fragBody struct {
	// Root is the sender's Merkle-root commitment over all n fragments.
	Root [32]byte
	// Index is the fragment index; a CECHO must carry the echoer's own.
	Index int
	// PayLen is the original payload length, bound into the leaf hash.
	PayLen int
	// Shard is the fragment's shard bytes.
	Shard []byte
	// Branch authenticates (PayLen, Index, Shard) against Root.
	Branch [][32]byte
}

// InstanceID builds the canonical instance identifier, binding the
// sender's identity into the instance so no other party can usurp it.
func InstanceID(sender int, tag string) string {
	return strconv.Itoa(sender) + "/" + tag
}

// SenderOf parses the sender out of an instance identifier.
func SenderOf(instance string) (int, error) {
	head, _, ok := strings.Cut(instance, "/")
	if !ok {
		return 0, fmt.Errorf("rbc: malformed instance %q", instance)
	}
	sender, err := strconv.Atoi(head)
	if err != nil {
		return 0, fmt.Errorf("rbc: malformed instance %q", instance)
	}
	return sender, nil
}

// Config wires one broadcast instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend consulted for the
	// echo-quorum, amplification, and delivery rules; nil wraps Struct
	// in the symmetric backend, preserving the original behavior.
	Trust trust.Quorums
	// Instance is the instance identifier (use InstanceID).
	Instance string
	// Sender is the broadcasting party.
	Sender int
	// Deliver is called exactly once with the delivered payload.
	Deliver func(payload []byte)
	// Predicate optionally rejects payloads (external validity); nil
	// accepts everything. On the plain path honest parties neither echo
	// nor deliver a payload failing the predicate; on the coded path a
	// fragment reveals nothing to validate, so the check moves to
	// delivery time (reconstructed payloads failing it never deliver).
	Predicate func(payload []byte) bool
	// CodedThreshold switches Start to coded dissemination for payloads
	// of at least this many bytes. 0 disables the coded sender path
	// (receivers always understand coded messages). The fragment count
	// parameters derive from Struct; structures without a usable
	// k = n−2t ≥ 1 fall back to the plain path.
	CodedThreshold int
	// RetryInterval paces the rotating REQ fetch retry over the vouching
	// set: a lost ANS no longer stalls the instance forever. 0 selects
	// DefaultRetryInterval; negative disables retries.
	RetryInterval time.Duration
}

// RBC is one reliable-broadcast instance. All methods must be called from
// the router's dispatch goroutine (or before it starts), except Start.
type RBC struct {
	cfg   Config
	trust trust.Quorums
	self  int

	echoed    bool
	readySent bool
	delivered bool
	requested bool

	// echoedBy and readiedBy record which parties this instance has
	// counted an ECHO/READY from — the first vote per party wins. Honest
	// parties vote once, so this bounds every per-digest map at n
	// entries no matter how many distinct payloads a Byzantine party
	// invents.
	echoedBy  adversary.Set
	readiedBy adversary.Set

	echoes   map[[32]byte]adversary.Set
	readies  map[[32]byte]adversary.Set
	payloads map[[32]byte][]byte
	answered adversary.Set

	// Coded-mode receive state: per-root fragment sets and roots whose
	// reconstruction failed the re-encode commitment check.
	frags    map[[32]byte]*rootFrags
	badRoots map[[32]byte]bool
	codec    *rs.Codec
	codecSet bool

	// REQ fetch state: the digest being fetched, the parties asked so
	// far (the only ones whose ANS is accepted), and the rotating retry.
	reqDigest   [32]byte
	reqTargets  adversary.Set
	reqArmed    bool
	reqCursor   int
	deliveredAt [32]byte

	span *obs.Span

	payloadsDropped *obs.Counter
	reqRetries      *obs.Counter
	codedFragsSent  *obs.Counter
	codedEchoes     *obs.Counter
	codedRebuilt    *obs.Counter
	codedInvalid    *obs.Counter
	rsEncodes       *obs.Counter
	rsRebuilds      *obs.Counter
}

type rootFrags struct {
	payLen int
	shards map[int][]byte
}

// New creates and registers a broadcast instance on the router.
func New(cfg Config) *RBC {
	r := &RBC{
		cfg:      cfg,
		trust:    cfg.Trust,
		self:     cfg.Router.Self(),
		echoes:   make(map[[32]byte]adversary.Set),
		readies:  make(map[[32]byte]adversary.Set),
		payloads: make(map[[32]byte][]byte),
		span:     obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if r.trust == nil {
		r.trust = trust.NewSymmetric(cfg.Struct)
	}
	if reg := cfg.Router.Observer(); reg != nil {
		r.payloadsDropped = reg.Counter("rbc.payloads.dropped")
		r.reqRetries = reg.Counter("rbc.req.retries")
		r.codedFragsSent = reg.Counter("rbc.coded.frags.sent")
		r.codedEchoes = reg.Counter("rbc.coded.echoes")
		r.codedRebuilt = reg.Counter("rbc.coded.reconstructs")
		r.codedInvalid = reg.Counter("rbc.coded.invalid")
		r.rsEncodes = reg.Counter("rs.encodes")
		r.rsRebuilds = reg.Counter("rs.reconstructs")
	}
	cfg.Router.Register(Protocol, cfg.Instance, r.Handle)
	return r
}

// newCodec derives the erasure-coding parameters k = n−2t, m = 2t from
// the adversary structure. ok is false when the structure admits no
// usable coding (then senders fall back to the plain path).
func newCodec(st *adversary.Structure, n int) (*rs.Codec, bool) {
	if st == nil || n < 1 || n > rs.MaxShards {
		return nil, false
	}
	t, err := st.MaxTolerated()
	if err != nil {
		return nil, false
	}
	k := n - 2*t
	if k < 1 {
		return nil, false
	}
	c, err := rs.New(k, n-k)
	if err != nil {
		return nil, false
	}
	return c, true
}

// getCodec caches the receive-side codec on first use.
func (r *RBC) getCodec() *rs.Codec {
	if !r.codecSet {
		r.codecSet = true
		r.codec, _ = newCodec(r.cfg.Struct, r.cfg.Router.N())
	}
	return r.codec
}

// fragLeaf is the Merkle leaf preimage: it binds the payload length and
// the fragment index to the shard bytes, so inconsistent length claims
// or transplanted fragments fail branch verification.
func fragLeaf(payLen, index int, shard []byte) []byte {
	leaf := make([]byte, 12+len(shard))
	binary.BigEndian.PutUint64(leaf, uint64(payLen))
	binary.BigEndian.PutUint32(leaf[8:], uint32(index))
	copy(leaf[12:], shard)
	return leaf
}

func fragLeaves(shards [][]byte, payLen int) [][]byte {
	leaves := make([][]byte, len(shards))
	for i, s := range shards {
		leaves[i] = fragLeaf(payLen, i, s)
	}
	return leaves
}

// Start broadcasts the payload; only the instance's sender may call it.
// Safe from any goroutine.
func (r *RBC) Start(payload []byte) error {
	if r.cfg.Router.Self() != r.cfg.Sender {
		return fmt.Errorf("rbc: party %d cannot start instance of sender %d", r.cfg.Router.Self(), r.cfg.Sender)
	}
	if r.cfg.CodedThreshold > 0 && len(payload) >= r.cfg.CodedThreshold {
		if cdc, ok := newCodec(r.cfg.Struct, r.cfg.Router.N()); ok {
			return r.startCoded(cdc, payload)
		}
	}
	// Journaled: the sender's payload is a commitment — a recovered
	// sender must re-send the same bytes, never a different payload.
	return r.cfg.Router.BroadcastJournaled("send", Protocol, r.cfg.Instance, typeSend, payloadBody{Payload: payload})
}

// startCoded erasure-codes the payload and sends each party its own
// fragment. Only the sender's local codec and tree are touched, so the
// method stays safe off the dispatch goroutine like the plain Start.
func (r *RBC) startCoded(cdc *rs.Codec, payload []byte) error {
	shards, err := cdc.Encode(cdc.Split(payload))
	if err != nil {
		return fmt.Errorf("rbc: coded start: %w", err)
	}
	r.rsEncodes.Inc()
	tree := rs.NewTree(fragLeaves(shards, len(payload)))
	root := tree.Root()
	// Journal the root commitment before the first fragment leaves: a
	// recovered sender either repeats the identical encoding or goes
	// mute — it can never commit to a second root for this instance.
	rec, replayed, err := r.cfg.Router.JournalCommitment(Protocol, r.cfg.Instance, typeCommit, "send", root[:])
	if err != nil {
		return fmt.Errorf("rbc: coded commitment not durable: %w", err)
	}
	if replayed && !bytes.Equal(rec, root[:]) {
		return fmt.Errorf("rbc: journaled commitment differs from recomputed root; refusing to equivocate")
	}
	for j := 0; j < r.cfg.Router.N(); j++ {
		if err := r.cfg.Router.Send(j, Protocol, r.cfg.Instance, typeFrag, fragBody{
			Root:   root,
			Index:  j,
			PayLen: len(payload),
			Shard:  shards[j],
			Branch: tree.Branch(j),
		}); err != nil {
			return err
		}
		r.codedFragsSent.Inc()
	}
	return nil
}

// Delivered reports whether the instance has delivered.
func (r *RBC) Delivered() bool { return r.delivered }

// PayloadsHeld reports how many distinct payload buffers the instance
// currently retains — the quantity the bounded-memory regression tests
// watch.
func (r *RBC) PayloadsHeld() int { return len(r.payloads) }

func (r *RBC) valid(payload []byte) bool {
	return r.cfg.Predicate == nil || r.cfg.Predicate(payload)
}

// Handle processes one protocol message.
func (r *RBC) Handle(from int, msgType string, payload []byte) {
	switch msgType {
	case typeSend:
		var body payloadBody
		if from != r.cfg.Sender || !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onSend(body.Payload)
	case typeEcho:
		var body payloadBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onEcho(from, body.Payload)
	case typeFrag:
		var body fragBody
		if from != r.cfg.Sender || !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onFrag(body)
	case typeCEcho:
		var body fragBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onCEcho(from, body)
	case typeReady:
		var body digestBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onReady(from, body.Digest)
	case typeReq:
		var body digestBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onReq(from, body.Digest)
	case typeAns:
		var body payloadBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onAns(from, body.Payload)
	}
}

func (r *RBC) onSend(payload []byte) {
	if r.echoed || !r.valid(payload) {
		return
	}
	r.echoed = true
	_ = r.cfg.Router.BroadcastJournaled("echo", Protocol, r.cfg.Instance, typeEcho, payloadBody{Payload: payload})
}

// onFrag handles the sender's direct fragment: verify the branch against
// the committed root and echo the fragment to everyone.
func (r *RBC) onFrag(b fragBody) {
	if r.echoed || b.Index != r.self || !r.fragValid(&b) {
		return
	}
	r.echoed = true
	// Journaled: the echoed fragment is this party's commitment to the
	// sender's root for this instance.
	_ = r.cfg.Router.BroadcastJournaled("echo", Protocol, r.cfg.Instance, typeCEcho, b)
}

// fragValid checks a fragment's shape and Merkle branch.
func (r *RBC) fragValid(b *fragBody) bool {
	cdc := r.getCodec()
	n := r.cfg.Router.N()
	if cdc == nil || b.Index < 0 || b.Index >= n || b.PayLen < 0 {
		return false
	}
	want := cdc.ShardLen(b.PayLen)
	if want == 0 {
		want = 1
	}
	if len(b.Shard) != want {
		return false
	}
	return rs.VerifyBranch(b.Root, b.Index, n, fragLeaf(b.PayLen, b.Index, b.Shard), b.Branch)
}

func (r *RBC) onEcho(from int, payload []byte) {
	if r.echoedBy.Has(from) {
		return // first echo per party wins: bounds all per-digest state
	}
	if !r.valid(payload) {
		return
	}
	d := sha256.Sum256(payload)
	r.echoedBy = r.echoedBy.Add(from)
	r.echoes[d] = r.echoes[d].Add(from)
	r.storeSpeculative(d, payload)
	if r.trust.IsQuorum(r.self, r.echoes[d]) {
		r.sendReady(d)
	}
	r.tryDeliver(d)
}

// onCEcho handles another party's fragment echo: each party may echo
// exactly its own fragment, once.
func (r *RBC) onCEcho(from int, b fragBody) {
	if r.echoedBy.Has(from) || b.Index != from {
		return
	}
	if !r.fragValid(&b) {
		return
	}
	r.echoedBy = r.echoedBy.Add(from)
	r.echoes[b.Root] = r.echoes[b.Root].Add(from)
	r.codedEchoes.Inc()
	if !r.delivered && !r.badRoots[b.Root] {
		rf := r.frags[b.Root]
		if rf == nil {
			rf = &rootFrags{payLen: b.PayLen, shards: make(map[int][]byte)}
			if r.frags == nil {
				r.frags = make(map[[32]byte]*rootFrags)
			}
			r.frags[b.Root] = rf
		}
		// A branch-verified fragment with a different length claim can
		// only come from a sender that committed an inconsistent tree;
		// such a tree can never pass the delivery re-encode check, so
		// dropping the fragment loses nothing.
		if rf.payLen == b.PayLen {
			rf.shards[from] = b.Shard
		}
	}
	if r.trust.IsQuorum(r.self, r.echoes[b.Root]) {
		r.sendReady(b.Root)
	}
	r.tryDeliver(b.Root)
}

func (r *RBC) onReady(from int, d [32]byte) {
	if r.readiedBy.Has(from) {
		return // first READY per party wins (honest parties send one)
	}
	r.readiedBy = r.readiedBy.Add(from)
	r.readies[d] = r.readies[d].Add(from)
	// Amplification: once the READY senders block every quorum of this
	// party, some honest party in one of them sent READY first.
	if r.trust.Blocks(r.self, r.readies[d]) {
		r.sendReady(d)
	}
	r.tryDeliver(d)
}

func (r *RBC) sendReady(d [32]byte) {
	if r.readySent {
		return
	}
	r.readySent = true
	_ = r.cfg.Router.BroadcastJournaled("ready", Protocol, r.cfg.Instance, typeReady, digestBody{Digest: d})
}

func (r *RBC) tryDeliver(d [32]byte) {
	if r.delivered || !r.trust.IsStrong(r.self, r.readies[d]) {
		return
	}
	p, ok := r.payloads[d]
	if !ok {
		if rec, found := r.tryReconstruct(d); found {
			if !r.valid(rec) {
				// External validity, deferred from echo time on the
				// coded path: an invalid payload never delivers, at any
				// honest party (they all reconstruct the same bytes).
				r.markBadRoot(d)
				return
			}
			r.payloads[d] = rec
			p, ok = rec, true
		}
	}
	if !ok {
		// Fetch the payload from the parties that vouched for it.
		r.requestPayload(d)
		return
	}
	r.delivered = true
	r.deliveredAt = d
	r.compactAfterDeliver(d)
	r.span.End(obs.StageDeliver, -1)
	if r.cfg.Deliver != nil {
		r.cfg.Deliver(p)
	}
}

// tryReconstruct attempts a coded reconstruction for root d: with at
// least k branch-verified fragments, decode the data shards, re-encode
// all n, rebuild the Merkle tree, and accept only if the recomputed root
// equals the commitment. The re-encode check is what turns "any k
// fragments" into agreement: if any honest party's k-subset re-encodes
// to the root, the committed fragment set is the consistent encoding of
// one payload and every other subset reconstructs the same bytes; if
// not, no subset does and no honest party ever delivers.
func (r *RBC) tryReconstruct(d [32]byte) ([]byte, bool) {
	rf := r.frags[d]
	cdc := r.getCodec()
	if rf == nil || cdc == nil || r.badRoots[d] || len(rf.shards) < cdc.K() {
		return nil, false
	}
	shards := make([][]byte, cdc.N())
	for i, s := range rf.shards {
		shards[i] = s
	}
	r.rsRebuilds.Inc()
	data, err := cdc.Reconstruct(shards)
	if err != nil {
		r.markBadRoot(d)
		return nil, false
	}
	payload, err := cdc.Join(data, rf.payLen)
	if err != nil {
		r.markBadRoot(d)
		return nil, false
	}
	full, err := cdc.Encode(data)
	if err != nil {
		r.markBadRoot(d)
		return nil, false
	}
	if rs.NewTree(fragLeaves(full, rf.payLen)).Root() != d {
		r.markBadRoot(d)
		return nil, false
	}
	r.codedRebuilt.Inc()
	return payload, true
}

func (r *RBC) markBadRoot(d [32]byte) {
	if r.badRoots == nil {
		r.badRoots = make(map[[32]byte]bool)
	}
	r.badRoots[d] = true
	delete(r.frags, d)
	r.codedInvalid.Inc()
}

// requestPayload opens (or continues) the REQ fetch for digest d and
// arms the rotating retry timer.
func (r *RBC) requestPayload(d [32]byte) {
	if r.requested {
		return
	}
	r.requested = true
	r.reqDigest = d
	targets := r.readies[d].Union(r.echoes[d]).Remove(r.self)
	r.reqTargets = targets
	for _, j := range targets.Members() {
		_ = r.cfg.Router.Send(j, Protocol, r.cfg.Instance, typeReq, digestBody{Digest: d})
	}
	r.scheduleRetry()
}

// scheduleRetry arms the REQ retry timer: vouchers answer at most once
// and a lossy link can lose the ANS, so a single round of REQs could
// otherwise stall the instance forever.
func (r *RBC) scheduleRetry() {
	if r.cfg.RetryInterval < 0 || r.reqArmed || r.delivered {
		return
	}
	r.reqArmed = true
	interval := r.cfg.RetryInterval
	if interval == 0 {
		interval = DefaultRetryInterval
	}
	time.AfterFunc(interval, func() {
		r.cfg.Router.Do(r.retryReq)
	})
}

// retryReq re-REQs one voucher per tick, rotating through the current
// vouching set (which may have grown since the first round).
func (r *RBC) retryReq() {
	r.reqArmed = false
	if r.delivered || !r.requested {
		return
	}
	vouchers := r.readies[r.reqDigest].Union(r.echoes[r.reqDigest]).Remove(r.self).Members()
	if len(vouchers) > 0 {
		j := vouchers[r.reqCursor%len(vouchers)]
		r.reqCursor++
		r.reqTargets = r.reqTargets.Add(j)
		r.reqRetries.Inc()
		_ = r.cfg.Router.Send(j, Protocol, r.cfg.Instance, typeReq, digestBody{Digest: r.reqDigest})
	}
	r.scheduleRetry()
}

func (r *RBC) onReq(from int, d [32]byte) {
	if r.answered.Has(from) {
		return // answer each party at most once per instance
	}
	p, ok := r.payloads[d]
	if !ok {
		return
	}
	r.answered = r.answered.Add(from)
	_ = r.cfg.Router.Send(from, Protocol, r.cfg.Instance, typeAns, payloadBody{Payload: p})
}

// onAns accepts a fetched payload only while a fetch is outstanding and
// only from a party this instance actually asked: unsolicited or late
// answers are dropped instead of stored.
func (r *RBC) onAns(from int, payload []byte) {
	if !r.requested || r.delivered || !r.reqTargets.Has(from) {
		return
	}
	if !r.valid(payload) {
		return
	}
	d := sha256.Sum256(payload)
	if d != r.reqDigest {
		// A coded instance's digest is the Merkle-root commitment, not
		// the payload hash: verify by re-encoding.
		if !r.codedMatchesRoot(payload, r.reqDigest) {
			return
		}
		d = r.reqDigest
	}
	if _, ok := r.payloads[d]; !ok {
		r.payloads[d] = payload
	}
	r.tryDeliver(d)
}

// codedMatchesRoot checks whether payload's coded encoding commits to
// root: the ANS analogue of the delivery re-encode check.
func (r *RBC) codedMatchesRoot(payload []byte, root [32]byte) bool {
	cdc := r.getCodec()
	if cdc == nil {
		return false
	}
	shards, err := cdc.Encode(cdc.Split(payload))
	if err != nil {
		return false
	}
	r.rsEncodes.Inc()
	return rs.NewTree(fragLeaves(shards, len(payload))).Root() == root
}

// storeSpeculative retains an undelivered payload buffer subject to the
// retention rule — keep bytes only for digests whose support set could
// still reach a quorum — and the hard per-instance cap.
func (r *RBC) storeSpeculative(d [32]byte, payload []byte) {
	if _, ok := r.payloads[d]; ok {
		return
	}
	r.pruneUnsupportable()
	if len(r.payloads) >= maxStoredPayloads {
		// Evict the weakest-supported stored digest if the newcomer has
		// at least as much support; otherwise drop the newcomer.
		victim, vSupport := d, r.support(d).Count()
		for od := range r.payloads {
			if od == r.reqDigest && r.requested {
				continue // the digest being fetched stays pinned
			}
			if s := r.support(od).Count(); s < vSupport {
				victim, vSupport = od, s
			}
		}
		r.payloadsDropped.Inc()
		if victim == d {
			return
		}
		delete(r.payloads, victim)
	}
	r.payloads[d] = payload
}

// support is the set of parties vouching for digest d.
func (r *RBC) support(d [32]byte) adversary.Set {
	return r.echoes[d].Union(r.readies[d])
}

// pruneUnsupportable drops payload buffers whose digest can no longer
// gather a quorum of support: parties that already voted for another
// digest are committed (honest parties vote once), so the potential
// support is the current vouchers plus the parties still silent.
func (r *RBC) pruneUnsupportable() {
	n := r.cfg.Router.N()
	silent := r.echoedBy.Union(r.readiedBy).Complement(n)
	for d := range r.payloads {
		if r.requested && d == r.reqDigest {
			continue // fetched under a strong READY set: keep
		}
		if !r.trust.IsQuorum(r.self, r.support(d).Union(silent)) {
			delete(r.payloads, d)
			r.payloadsDropped.Inc()
		}
	}
}

// compactAfterDeliver releases speculative state once the instance has
// delivered: only the delivered payload stays (to serve REQ fetches).
func (r *RBC) compactAfterDeliver(d [32]byte) {
	for od := range r.payloads {
		if od != d {
			delete(r.payloads, od)
		}
	}
	r.frags = nil
	r.badRoots = nil
}
