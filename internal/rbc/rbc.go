// Package rbc implements reliable broadcast: an optimized variant of the
// Bracha–Toueg protocol, the basic broadcast primitive of the paper's
// architecture (§3). All honest parties deliver the same set of messages,
// including every message broadcast by an honest sender; nothing is
// guaranteed about delivery order, and a corrupted sender may cause
// agreement on at most one payload (or none).
//
// Optimizations over the textbook protocol: READY messages carry only the
// payload digest, and a party that reaches the delivery condition without
// having seen the payload fetches it from the parties that vouched for it
// (digest-checked), so large payloads travel at most twice per honest
// party pair.
//
// Thresholds follow the generalized substitution rules (§4.2): the echo
// quorum is IsQuorum (n−t), READY amplification needs a set that blocks
// every quorum (t+1), and delivery needs the strong rule (2t+1). All
// three are evaluated through a trust.Quorums backend with this party as
// the observer, so the same code runs under the paper's shared adversary
// structure and under asymmetric per-party quorum systems: a wise party
// (one whose fail-prone assumption covers the actual corruption set)
// keeps agreement with every other wise party, because any two wise
// parties' quorums intersect outside the corruption set and an honest
// party sends at most one READY per instance.
package rbc

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/trust"
)

// Protocol is the wire protocol name of reliable broadcast.
const Protocol = "rbc"

// Message types.
const (
	typeSend  = "SEND"
	typeEcho  = "ECHO"
	typeReady = "READY"
	typeReq   = "REQ"
	typeAns   = "ANS"
)

// payloadBody carries a full payload (SEND, ECHO, ANS).
type payloadBody struct {
	Payload []byte
}

// digestBody carries only the payload digest (READY, REQ).
type digestBody struct {
	Digest [32]byte
}

// InstanceID builds the canonical instance identifier, binding the
// sender's identity into the instance so no other party can usurp it.
func InstanceID(sender int, tag string) string {
	return strconv.Itoa(sender) + "/" + tag
}

// SenderOf parses the sender out of an instance identifier.
func SenderOf(instance string) (int, error) {
	head, _, ok := strings.Cut(instance, "/")
	if !ok {
		return 0, fmt.Errorf("rbc: malformed instance %q", instance)
	}
	sender, err := strconv.Atoi(head)
	if err != nil {
		return 0, fmt.Errorf("rbc: malformed instance %q", instance)
	}
	return sender, nil
}

// Config wires one broadcast instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend consulted for the
	// echo-quorum, amplification, and delivery rules; nil wraps Struct
	// in the symmetric backend, preserving the original behavior.
	Trust trust.Quorums
	// Instance is the instance identifier (use InstanceID).
	Instance string
	// Sender is the broadcasting party.
	Sender int
	// Deliver is called exactly once with the delivered payload.
	Deliver func(payload []byte)
	// Predicate optionally rejects payloads (external validity); nil
	// accepts everything. Honest parties neither echo nor deliver a
	// payload failing the predicate.
	Predicate func(payload []byte) bool
}

// RBC is one reliable-broadcast instance. All methods must be called from
// the router's dispatch goroutine (or before it starts).
type RBC struct {
	cfg   Config
	trust trust.Quorums
	self  int

	echoed    bool
	readySent bool
	delivered bool
	requested bool

	echoes   map[[32]byte]adversary.Set
	readies  map[[32]byte]adversary.Set
	payloads map[[32]byte][]byte
	answered adversary.Set

	span *obs.Span
}

// New creates and registers a broadcast instance on the router.
func New(cfg Config) *RBC {
	r := &RBC{
		cfg:      cfg,
		trust:    cfg.Trust,
		self:     cfg.Router.Self(),
		echoes:   make(map[[32]byte]adversary.Set),
		readies:  make(map[[32]byte]adversary.Set),
		payloads: make(map[[32]byte][]byte),
		span:     obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if r.trust == nil {
		r.trust = trust.NewSymmetric(cfg.Struct)
	}
	cfg.Router.Register(Protocol, cfg.Instance, r.Handle)
	return r
}

// Start broadcasts the payload; only the instance's sender may call it.
func (r *RBC) Start(payload []byte) error {
	if r.cfg.Router.Self() != r.cfg.Sender {
		return fmt.Errorf("rbc: party %d cannot start instance of sender %d", r.cfg.Router.Self(), r.cfg.Sender)
	}
	// Journaled: the sender's payload is a commitment — a recovered
	// sender must re-send the same bytes, never a different payload.
	return r.cfg.Router.BroadcastJournaled("send", Protocol, r.cfg.Instance, typeSend, payloadBody{Payload: payload})
}

// Delivered reports whether the instance has delivered.
func (r *RBC) Delivered() bool { return r.delivered }

func (r *RBC) valid(payload []byte) bool {
	return r.cfg.Predicate == nil || r.cfg.Predicate(payload)
}

// Handle processes one protocol message.
func (r *RBC) Handle(from int, msgType string, payload []byte) {
	switch msgType {
	case typeSend:
		var body payloadBody
		if from != r.cfg.Sender || !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onSend(body.Payload)
	case typeEcho:
		var body payloadBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onEcho(from, body.Payload)
	case typeReady:
		var body digestBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onReady(from, body.Digest)
	case typeReq:
		var body digestBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onReq(from, body.Digest)
	case typeAns:
		var body payloadBody
		if !r.cfg.Router.Decode(payload, &body) {
			return
		}
		r.onAns(body.Payload)
	}
}

func (r *RBC) onSend(payload []byte) {
	if r.echoed || !r.valid(payload) {
		return
	}
	r.echoed = true
	_ = r.cfg.Router.BroadcastJournaled("echo", Protocol, r.cfg.Instance, typeEcho, payloadBody{Payload: payload})
}

func (r *RBC) onEcho(from int, payload []byte) {
	if !r.valid(payload) {
		return
	}
	d := sha256.Sum256(payload)
	if r.echoes[d].Has(from) {
		return
	}
	r.echoes[d] = r.echoes[d].Add(from)
	if _, ok := r.payloads[d]; !ok {
		r.payloads[d] = payload
	}
	if r.trust.IsQuorum(r.self, r.echoes[d]) {
		r.sendReady(d)
	}
	r.tryDeliver(d)
}

func (r *RBC) onReady(from int, d [32]byte) {
	if r.readies[d].Has(from) {
		return
	}
	r.readies[d] = r.readies[d].Add(from)
	// Amplification: once the READY senders block every quorum of this
	// party, some honest party in one of them sent READY first.
	if r.trust.Blocks(r.self, r.readies[d]) {
		r.sendReady(d)
	}
	r.tryDeliver(d)
}

func (r *RBC) sendReady(d [32]byte) {
	if r.readySent {
		return
	}
	r.readySent = true
	_ = r.cfg.Router.BroadcastJournaled("ready", Protocol, r.cfg.Instance, typeReady, digestBody{Digest: d})
}

func (r *RBC) tryDeliver(d [32]byte) {
	if r.delivered || !r.trust.IsStrong(r.self, r.readies[d]) {
		return
	}
	p, ok := r.payloads[d]
	if !ok {
		// Fetch the payload from the parties that vouched for it.
		if !r.requested {
			r.requested = true
			for _, j := range r.readies[d].Union(r.echoes[d]).Members() {
				if j != r.cfg.Router.Self() {
					_ = r.cfg.Router.Send(j, Protocol, r.cfg.Instance, typeReq, digestBody{Digest: d})
				}
			}
		}
		return
	}
	r.delivered = true
	r.span.End(obs.StageDeliver, -1)
	if r.cfg.Deliver != nil {
		r.cfg.Deliver(p)
	}
}

func (r *RBC) onReq(from int, d [32]byte) {
	if r.answered.Has(from) {
		return // answer each party at most once per instance
	}
	p, ok := r.payloads[d]
	if !ok {
		return
	}
	r.answered = r.answered.Add(from)
	_ = r.cfg.Router.Send(from, Protocol, r.cfg.Instance, typeAns, payloadBody{Payload: p})
}

func (r *RBC) onAns(payload []byte) {
	if !r.valid(payload) {
		return
	}
	d := sha256.Sum256(payload)
	if _, ok := r.payloads[d]; !ok {
		r.payloads[d] = payload
	}
	r.tryDeliver(d)
}
