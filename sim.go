package sintra

import (
	"errors"
	"fmt"
	"sync"

	"sintra/internal/core"
	"sintra/internal/deal"
	"sintra/internal/group"
	"sintra/internal/netsim"
)

// SimOptions configures an in-process simulated deployment.
type SimOptions struct {
	// Structure is the adversary structure (required).
	Structure *Structure
	// ServiceName tags the replicated service (default "service").
	ServiceName string
	// NewService creates one state-machine replica per server (required).
	NewService func() StateMachine
	// Mode selects the dissemination protocol (default ModeAtomic).
	Mode Mode
	// Crashed lists servers that are never started — they stay silent for
	// the whole run, modelling crash corruption.
	Crashed []int
	// Seed makes the adversarial network scheduler deterministic.
	Seed int64
	// MaxClients bounds the number of NewClient calls (default 8).
	MaxClients int
	// GroupName selects the group (default "test256": fast experiments).
	GroupName string
	// ForceCert selects certificate signatures even for thresholds.
	ForceCert bool
}

// SimulatedDeployment runs a full deployment — dealer, adversarially
// scheduled asynchronous network, and one replica per (non-crashed)
// server — inside a single process. It is the quickest way to experience
// the architecture and the substrate of the experiment harness.
type SimulatedDeployment struct {
	// Public is the dealer's public output.
	Public *Public

	opts  SimOptions
	net   *netsim.Network
	nodes []*core.Node

	mu         sync.Mutex
	clientNext int
	clients    []*Client

	stopOnce sync.Once
}

// NewSimulatedDeployment deals keys, builds the network, and starts the
// replicas.
func NewSimulatedDeployment(opts SimOptions) (*SimulatedDeployment, error) {
	if opts.Structure == nil || opts.NewService == nil {
		return nil, errors.New("sintra: Structure and NewService are required")
	}
	if opts.ServiceName == "" {
		opts.ServiceName = "service"
	}
	if opts.Mode == 0 {
		opts.Mode = ModeAtomic
	}
	if opts.MaxClients <= 0 {
		opts.MaxClients = 8
	}
	if opts.GroupName == "" {
		opts.GroupName = group.NameTest256
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	g, err := group.ByName(opts.GroupName)
	if err != nil {
		return nil, err
	}
	pub, secrets, err := deal.New(deal.Options{
		Group:     g,
		Structure: opts.Structure,
		RSAPrimes: deal.TestPrimes256(),
		ForceCert: opts.ForceCert,
	})
	if err != nil {
		return nil, err
	}

	crashed := make(map[int]bool, len(opts.Crashed))
	for _, i := range opts.Crashed {
		crashed[i] = true
	}
	n := opts.Structure.N()
	d := &SimulatedDeployment{
		Public:     pub,
		opts:       opts,
		net:        netsim.New(n, opts.MaxClients, netsim.NewRandomScheduler(seed)),
		clientNext: n,
	}
	for i := 0; i < n; i++ {
		if crashed[i] {
			continue
		}
		node, err := core.NewNode(core.NodeConfig{
			Public:      pub,
			Secret:      secrets[i],
			Transport:   d.net.Endpoint(i),
			ServiceName: opts.ServiceName,
			Service:     opts.NewService(),
			Mode:        opts.Mode,
		})
		if err != nil {
			d.Stop()
			return nil, err
		}
		d.nodes = append(d.nodes, node)
		go node.Run()
	}
	return d, nil
}

// NewClient attaches a client endpoint to the simulated network.
func (d *SimulatedDeployment) NewClient() (*Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.clientNext >= d.opts.Structure.N()+d.opts.MaxClients {
		return nil, fmt.Errorf("sintra: more than %d clients", d.opts.MaxClients)
	}
	ep := d.net.Endpoint(d.clientNext)
	d.clientNext++
	c := core.NewClient(d.Public, ep, d.opts.ServiceName, d.opts.Mode)
	d.clients = append(d.clients, c)
	return c, nil
}

// TrafficSummary reports the messages and bytes delivered so far, per
// protocol layer — the measurement hook of the experiment harness.
func (d *SimulatedDeployment) TrafficSummary() (perProtocolMsgs map[string]int, totalMsgs, totalBytes int) {
	st := d.net.Stats()
	totalMsgs, totalBytes = st.Total()
	return st.Messages, totalMsgs, totalBytes
}

// Stop shuts the deployment down.
func (d *SimulatedDeployment) Stop() {
	d.stopOnce.Do(func() {
		d.net.Stop()
		d.mu.Lock()
		clients := d.clients
		d.mu.Unlock()
		for _, c := range clients {
			c.Close()
		}
		for _, n := range d.nodes {
			n.Stop()
		}
	})
}
