package sintra

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sintra/internal/core"
	"sintra/internal/deal"
	"sintra/internal/faultsim"
	"sintra/internal/group"
	"sintra/internal/netsim"
	"sintra/internal/obs"
	"sintra/internal/wire"
)

// SimOptions configures an in-process simulated deployment. New code
// should prefer NewDeployment with functional options; this struct form
// remains fully supported.
type SimOptions struct {
	// Structure is the adversary structure (required).
	Structure *Structure
	// ServiceName tags the replicated service (default "service").
	ServiceName string
	// NewService creates one state-machine replica per server (required).
	NewService func() StateMachine
	// Mode selects the dissemination protocol (default ModeAtomic).
	Mode Mode
	// Trust optionally overrides every replica's quorum backend; nil
	// wraps Structure in the symmetric backend (the paper's shared
	// trust model). See core.NodeConfig.Trust and WithTrust.
	Trust Quorums
	// Crashed lists servers that are never started — they stay silent for
	// the whole run, modelling crash corruption.
	Crashed []int
	// Byzantine maps a server index to the attack behaviors applied to
	// its outbound traffic: the party runs the honest code, but its
	// transport lies for it. See WithByzantine.
	Byzantine map[int][]ByzantineBehavior
	// Scheduler overrides the network's delivery order (default: fair
	// random under Seed). Use NewPartitionScheduler or NewDelayScheduler
	// for targeted adversarial schedules.
	Scheduler NetworkScheduler
	// Seed makes the adversarial network scheduler deterministic.
	Seed int64
	// MaxClients bounds the number of NewClient calls (default 8).
	MaxClients int
	// GroupName selects the group backend: "modp2048"/"test256"/"test512"
	// (Z_p*) or "p256" (elliptic). Empty follows the SINTRA_GROUP
	// environment variable and falls back to "test256" — fast experiments
	// by default, and the whole simulation harness re-runs over another
	// backend by exporting SINTRA_GROUP=p256.
	GroupName string
	// ForceCert selects certificate signatures even for thresholds.
	ForceCert bool
	// Observer supplies the metrics registry shared by the network, every
	// replica, and every client. Nil creates a fresh one (the simulated
	// deployment always observes itself; read it via Metrics).
	Observer *Registry
	// Tracer optionally receives structured protocol-stage events from
	// every layer of every replica.
	Tracer Tracer
	// VerifyWorkers sizes each replica's parallel message-verification
	// pool: 0 keeps the engine default (GOMAXPROCS), negative disables
	// the pool. Per-server overrides in VerifyWorkersFor win.
	VerifyWorkers int
	// VerifyWorkersFor overrides VerifyWorkers per server index,
	// allowing mixed fleets (some replicas pipelined, some single-stage).
	VerifyWorkersFor map[int]int
	// VerifyBatch caps how many queued same-kind messages one verify
	// worker coalesces into a single batch-verification call on every
	// replica: 0 keeps the engine default, negative disables coalescing
	// (per-share verification), positive sets the cap.
	VerifyBatch int
	// BatchSize sets every replica's atomic broadcast batch floor
	// (0 keeps the protocol default).
	BatchSize int
	// MaxBatchSize caps the adaptive batch growth; see
	// core.NodeConfig.MaxBatchSize.
	MaxBatchSize int
	// CheckpointInterval sets every replica's checkpoint/GC period in
	// delivered payloads: 0 keeps the core default, negative disables
	// checkpointing. Effective in ModeAtomic when the service implements
	// Snapshotter; see core.NodeConfig.CheckpointInterval.
	CheckpointInterval int64
	// RetentionWindow bounds every replica's delivered-digest dedup
	// history; see core.NodeConfig.RetentionWindow.
	RetentionWindow int64
	// CodedThreshold switches ordering-layer proposals whose batches
	// reach this many bytes to coded dissemination (digest header plus
	// an erasure-coded reliable broadcast): 0 keeps the protocol default
	// (4 KiB), negative disables the coded path. See
	// core.NodeConfig.CodedThreshold.
	CodedThreshold int
	// ChunkSize splits oversized client payloads into deterministic
	// frames reassembled after ordering: 0 keeps the protocol default
	// (64 KiB), negative disables chunking. Atomic mode only. See
	// core.NodeConfig.ChunkSize.
	ChunkSize int
	// DataDir, when non-empty, gives every replica a durable write-ahead
	// log under DataDir/server<i>: protocol-critical messages are
	// journaled before first transmission, and RestartServerDurable
	// revives a killed replica from its journal (amnesia-free recovery).
	// Empty keeps replicas memoryless. See core.NodeConfig.DataDir.
	DataDir string
	// WALSyncInterval is every journal's group-commit latency cap: 0
	// selects the WAL default, negative disables fsync (fast tests on
	// throwaway data — crash injection still sees the written bytes).
	WALSyncInterval time.Duration
	// WALCrash maps a server index to a crash-injection hook handed to
	// its journal (see core.NodeConfig.WALFailAppend): the first append
	// it accepts wedges the journal, muting the replica mid-protocol.
	// RestartServerDurable clears the hook so the revived replica runs
	// clean. See WithWALCrashPoint.
	WALCrash map[int]func(lsn uint64) bool
}

// SimOption is a functional option for NewDeployment.
type SimOption func(*SimOptions)

// WithServiceName tags the replicated service.
func WithServiceName(name string) SimOption {
	return func(o *SimOptions) { o.ServiceName = name }
}

// WithMode selects atomic or secure-causal request dissemination.
func WithMode(m Mode) SimOption {
	return func(o *SimOptions) { o.Mode = m }
}

// WithTrust installs a quorum backend on every replica — e.g. an
// asymmetric backend built with NewAsymmetricTrust, giving each party
// its own fail-prone assumptions. Nil (the default) keeps the symmetric
// backend over the deployment's adversary structure.
func WithTrust(q Quorums) SimOption {
	return func(o *SimOptions) { o.Trust = q }
}

// WithCrashed leaves the listed servers silent for the whole run,
// modelling crash corruption.
func WithCrashed(servers ...int) SimOption {
	return func(o *SimOptions) { o.Crashed = append(o.Crashed, servers...) }
}

// WithByzantine corrupts one server with the given attack behaviors,
// applied in order to everything it sends. The replica still runs the
// honest protocol code — the behaviors subvert its transport, modelling
// an intruder who controls the party's network interface. Combine with
// further WithByzantine calls for a mixed fleet; keep the corrupted set
// inside the adversary structure for the protocol guarantees to hold.
func WithByzantine(server int, behaviors ...ByzantineBehavior) SimOption {
	return func(o *SimOptions) {
		if o.Byzantine == nil {
			o.Byzantine = make(map[int][]ByzantineBehavior)
		}
		o.Byzantine[server] = append(o.Byzantine[server], behaviors...)
	}
}

// WithScheduler overrides the network's delivery schedule — e.g. a
// PartitionScheduler that isolates parties until it heals.
func WithScheduler(s NetworkScheduler) SimOption {
	return func(o *SimOptions) { o.Scheduler = s }
}

// WithSeed makes the adversarial network scheduler deterministic.
func WithSeed(seed int64) SimOption {
	return func(o *SimOptions) { o.Seed = seed }
}

// WithMaxClients bounds the number of NewClient calls.
func WithMaxClients(n int) SimOption {
	return func(o *SimOptions) { o.MaxClients = n }
}

// WithGroupName selects the discrete-log group by name.
func WithGroupName(name string) SimOption {
	return func(o *SimOptions) { o.GroupName = name }
}

// WithForceCert selects certificate signatures even for thresholds.
func WithForceCert() SimOption {
	return func(o *SimOptions) { o.ForceCert = true }
}

// WithObserver shares reg as the deployment's metrics registry instead
// of creating a fresh one.
func WithObserver(reg *Registry) SimOption {
	return func(o *SimOptions) { o.Observer = reg }
}

// WithTracer streams structured protocol-stage events from every layer
// of every replica to t.
func WithTracer(t Tracer) SimOption {
	return func(o *SimOptions) { o.Tracer = t }
}

// WithVerifyWorkers sizes every replica's parallel message-verification
// pool: 0 keeps the engine default (GOMAXPROCS), negative disables the
// pool so all verification runs inline on the dispatch goroutine.
func WithVerifyWorkers(n int) SimOption {
	return func(o *SimOptions) { o.VerifyWorkers = n }
}

// WithVerifyWorkersFor overrides the verification pool size for one
// server, allowing mixed fleets of pipelined and single-stage replicas
// (the two are protocol-compatible by construction).
func WithVerifyWorkersFor(server, n int) SimOption {
	return func(o *SimOptions) {
		if o.VerifyWorkersFor == nil {
			o.VerifyWorkersFor = make(map[int]int)
		}
		o.VerifyWorkersFor[server] = n
	}
}

// WithVerifyBatch caps batch-verification coalescing on every replica:
// 0 keeps the engine default, negative disables coalescing so every
// share proof is checked individually, positive sets the cap.
func WithVerifyBatch(n int) SimOption {
	return func(o *SimOptions) { o.VerifyBatch = n }
}

// WithBatchSize sets the atomic broadcast batch floor and the adaptive
// ceiling (maxBatch <= batch pins the batch size, disabling adaptation;
// maxBatch 0 defaults to 8x the floor).
func WithBatchSize(batch, maxBatch int) SimOption {
	return func(o *SimOptions) {
		o.BatchSize = batch
		o.MaxBatchSize = maxBatch
	}
}

// WithCheckpointInterval sets the checkpoint/GC period in delivered
// payloads: every interval deliveries the replicas threshold-sign a
// digest of the service state, and the resulting stable checkpoint
// garbage-collects ordering history, router tombstones, and request
// bookkeeping — and is the anchor a killed-and-restarted replica catches
// up from. 0 keeps the core default; negative disables checkpointing
// (memory then relies on the deterministic retention window alone).
// Atomic mode with a Snapshotter service only.
func WithCheckpointInterval(interval int64) SimOption {
	return func(o *SimOptions) { o.CheckpointInterval = interval }
}

// WithRetentionWindow bounds the delivered-digest dedup history of every
// replica's ordering layer; see core.NodeConfig.RetentionWindow.
func WithRetentionWindow(window int64) SimOption {
	return func(o *SimOptions) { o.RetentionWindow = window }
}

// WithCodedThreshold sets the batch size (in bytes) above which every
// replica's ordering layer disseminates proposals as digest headers plus
// one erasure-coded reliable broadcast instead of embedding the payloads
// in the agreement value: 0 keeps the protocol default (4 KiB), negative
// disables the coded path (always-inline proposals).
func WithCodedThreshold(bytes int) SimOption {
	return func(o *SimOptions) { o.CodedThreshold = bytes }
}

// WithChunkSize sets the payload size (in bytes) above which client
// submissions are split into deterministic frames reassembled after
// ordering: 0 keeps the protocol default (64 KiB), negative disables
// chunking. Atomic mode only.
func WithChunkSize(bytes int) SimOption {
	return func(o *SimOptions) { o.ChunkSize = bytes }
}

// WithDataDir enables durable write-ahead logging: each replica journals
// its protocol-critical outbound messages under dir/server<i> before
// first transmission, and RestartServerDurable revives a killed replica
// from that journal so it re-sends byte-identical messages instead of
// equivocating. The plain RestartServer stays amnesiac — it wipes the
// server's journal first, modelling a replica that lost its disk.
func WithDataDir(dir string) SimOption {
	return func(o *SimOptions) { o.DataDir = dir }
}

// WithWALSyncInterval tunes every journal's group-commit latency cap:
// 0 keeps the WAL default, negative disables fsync (fast tests).
func WithWALSyncInterval(d time.Duration) SimOption {
	return func(o *SimOptions) { o.WALSyncInterval = d }
}

// WithWALCrashPoint injects a crash into one server's journal: the first
// append whose LSN fail accepts errors and permanently wedges the
// journal, so the replica falls mute mid-protocol exactly at that record
// — the adversarially timed power failure. Kill it with StopServer and
// revive it with RestartServerDurable, which clears the hook. Requires
// WithDataDir.
func WithWALCrashPoint(server int, fail func(lsn uint64) bool) SimOption {
	return func(o *SimOptions) {
		if o.WALCrash == nil {
			o.WALCrash = make(map[int]func(lsn uint64) bool)
		}
		o.WALCrash[server] = fail
	}
}

// SimulatedDeployment runs a full deployment — dealer, adversarially
// scheduled asynchronous network, and one replica per (non-crashed)
// server — inside a single process. It is the quickest way to experience
// the architecture and the substrate of the experiment harness.
type SimulatedDeployment struct {
	// Public is the dealer's public output.
	Public *Public

	opts    SimOptions
	reg     *obs.Registry
	net     *netsim.Network
	secrets []*deal.PartySecret
	seed    int64

	mu         sync.Mutex
	nodes      []*core.Node // indexed by server; nil = crashed/stopped
	clientNext int
	clients    []*Client

	stopOnce sync.Once
}

// NewDeployment deals keys, builds the adversarially scheduled network,
// and starts one replica per server. It is the primary constructor;
// NewSimulatedDeployment accepts the same configuration as a struct.
func NewDeployment(st *Structure, newService func() StateMachine, opts ...SimOption) (*SimulatedDeployment, error) {
	o := SimOptions{Structure: st, NewService: newService}
	for _, opt := range opts {
		opt(&o)
	}
	return NewSimulatedDeployment(o)
}

// NewSimulatedDeployment deals keys, builds the network, and starts the
// replicas.
func NewSimulatedDeployment(opts SimOptions) (*SimulatedDeployment, error) {
	if opts.Structure == nil || opts.NewService == nil {
		return nil, errors.New("sintra: Structure and NewService are required")
	}
	if opts.ServiceName == "" {
		opts.ServiceName = "service"
	}
	if opts.Mode == 0 {
		opts.Mode = ModeAtomic
	}
	if opts.MaxClients <= 0 {
		opts.MaxClients = 8
	}
	if opts.GroupName == "" {
		opts.GroupName = group.TestDefaultName()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	g, err := group.ByName(opts.GroupName)
	if err != nil {
		return nil, err
	}
	pub, secrets, err := deal.New(deal.Options{
		Group:     g,
		Structure: opts.Structure,
		RSAPrimes: deal.TestPrimes256(),
		ForceCert: opts.ForceCert,
	})
	if err != nil {
		return nil, err
	}

	reg := opts.Observer
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if opts.Tracer != nil {
		reg.SetTracer(opts.Tracer)
	}

	crashed := make(map[int]bool, len(opts.Crashed))
	for _, i := range opts.Crashed {
		crashed[i] = true
	}
	n := opts.Structure.N()
	sched := opts.Scheduler
	if sched == nil {
		sched = netsim.NewRandomScheduler(seed)
	}
	d := &SimulatedDeployment{
		Public:     pub,
		opts:       opts,
		reg:        reg,
		net:        netsim.New(n, opts.MaxClients, sched),
		secrets:    secrets,
		seed:       seed,
		nodes:      make([]*core.Node, n),
		clientNext: n,
	}
	d.net.SetObserver(reg)
	for i := 0; i < n; i++ {
		if crashed[i] {
			continue
		}
		if err := d.startNode(i); err != nil {
			d.Stop()
			return nil, err
		}
	}
	return d, nil
}

// startNode builds and runs the replica of server i (caller must ensure
// the slot is free).
func (d *SimulatedDeployment) startNode(i int) error {
	var tr wire.Transport = d.net.Endpoint(i)
	if bs := d.opts.Byzantine[i]; len(bs) > 0 {
		// Each corrupted party draws from its own seeded source so a
		// run is reproducible regardless of goroutine interleaving.
		p := faultsim.Wrap(tr, d.seed*1000003+int64(i), bs...)
		p.SetObserver(d.reg)
		tr = p
	}
	workers := d.opts.VerifyWorkers
	if w, ok := d.opts.VerifyWorkersFor[i]; ok {
		workers = w
	}
	cfg := core.NodeConfig{
		Public:             d.Public,
		Secret:             d.secrets[i],
		Transport:          tr,
		ServiceName:        d.opts.ServiceName,
		Service:            d.opts.NewService(),
		Mode:               d.opts.Mode,
		Trust:              d.opts.Trust,
		Observer:           d.reg,
		VerifyWorkers:      workers,
		VerifyBatch:        d.opts.VerifyBatch,
		BatchSize:          d.opts.BatchSize,
		MaxBatchSize:       d.opts.MaxBatchSize,
		CheckpointInterval: d.opts.CheckpointInterval,
		RetentionWindow:    d.opts.RetentionWindow,
		CodedThreshold:     d.opts.CodedThreshold,
		ChunkSize:          d.opts.ChunkSize,
	}
	if d.opts.DataDir != "" {
		cfg.DataDir = d.serverDir(i)
		cfg.WALSyncInterval = d.opts.WALSyncInterval
		d.mu.Lock()
		cfg.WALFailAppend = d.opts.WALCrash[i]
		d.mu.Unlock()
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.nodes[i] = node
	d.mu.Unlock()
	go node.Run()
	return nil
}

// Node returns the running replica of server i, or nil when the server
// is crashed or stopped (harness/progress inspection).
func (d *SimulatedDeployment) Node(i int) *core.Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.nodes) {
		return nil
	}
	return d.nodes[i]
}

// StopServer kills one replica mid-run: its endpoint closes, its
// dispatch loop exits, and the rest of the cluster keeps operating
// (tolerating it as a crash fault). Restart it with RestartServer.
func (d *SimulatedDeployment) StopServer(i int) {
	d.mu.Lock()
	node := (*core.Node)(nil)
	if i >= 0 && i < len(d.nodes) {
		node, d.nodes[i] = d.nodes[i], nil
	}
	d.mu.Unlock()
	if node != nil {
		node.Stop()
	}
}

// RestartServer revives a killed (or never-started) replica with a fresh
// service instance: the endpoint reopens and the new node joins with
// empty state, recovering the service via checkpoint catch-up — the
// crash-recovery scenario the checkpoint subsystem exists for. With a
// data directory configured the server's journal is wiped first: this is
// the amnesiac restart (a replica that lost its disk); use
// RestartServerDurable for amnesia-free recovery.
func (d *SimulatedDeployment) RestartServer(i int) error {
	if i < 0 || i >= d.opts.Structure.N() {
		return fmt.Errorf("sintra: no server %d", i)
	}
	if d.Node(i) != nil {
		return fmt.Errorf("sintra: server %d is still running", i)
	}
	if d.opts.DataDir != "" {
		if err := os.RemoveAll(d.serverDir(i)); err != nil {
			return err
		}
	}
	d.net.Reopen(i)
	return d.startNode(i)
}

// RestartServerDurable revives a killed replica from its write-ahead
// log: the journal replays, recovered commitments (votes, echoes, signed
// proposals) are re-sent byte-identically instead of being re-decided,
// the delivery frontier is restored, and the replica then catches the
// cluster up via checkpoint fetch. Any WithWALCrashPoint hook on the
// server is cleared — the crash already happened. Requires WithDataDir.
func (d *SimulatedDeployment) RestartServerDurable(i int) error {
	if d.opts.DataDir == "" {
		return errors.New("sintra: RestartServerDurable requires WithDataDir")
	}
	if i < 0 || i >= d.opts.Structure.N() {
		return fmt.Errorf("sintra: no server %d", i)
	}
	if d.Node(i) != nil {
		return fmt.Errorf("sintra: server %d is still running", i)
	}
	d.mu.Lock()
	delete(d.opts.WALCrash, i)
	d.mu.Unlock()
	d.net.Reopen(i)
	return d.startNode(i)
}

// serverDir is server i's private slice of the data directory.
func (d *SimulatedDeployment) serverDir(i int) string {
	return filepath.Join(d.opts.DataDir, fmt.Sprintf("server%d", i))
}

// NewClient attaches a client endpoint to the simulated network.
func (d *SimulatedDeployment) NewClient() (*Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.clientNext >= d.opts.Structure.N()+d.opts.MaxClients {
		return nil, fmt.Errorf("sintra: more than %d clients", d.opts.MaxClients)
	}
	ep := d.net.Endpoint(d.clientNext)
	d.clientNext++
	c := core.NewClient(d.Public, ep, d.opts.ServiceName, d.opts.Mode,
		core.WithObserver(d.reg))
	d.clients = append(d.clients, c)
	return c, nil
}

// Observer returns the deployment's shared metrics registry: the
// network, every replica (router and broadcast stack included), and
// every client report into it.
func (d *SimulatedDeployment) Observer() *Registry { return d.reg }

// Metrics snapshots every metric of the deployment — traffic per
// protocol, dispatch and end-to-end latency distributions, instance
// lifecycle counts, drops. It supersedes TrafficSummary.
func (d *SimulatedDeployment) Metrics() MetricsSnapshot { return d.reg.Snapshot() }

// TrafficSummary reports the messages and bytes delivered so far, per
// protocol layer — the measurement hook of the experiment harness. It is
// a view of Metrics: per-protocol counters under "net.msgs." and
// "net.bytes.".
func (d *SimulatedDeployment) TrafficSummary() (perProtocolMsgs map[string]int, totalMsgs, totalBytes int) {
	snap := d.Metrics()
	msgs := snap.CountersWithPrefix("net.msgs.")
	perProtocolMsgs = make(map[string]int, len(msgs))
	for proto, v := range msgs {
		perProtocolMsgs[proto] = int(v)
		totalMsgs += int(v)
	}
	for _, v := range snap.CountersWithPrefix("net.bytes.") {
		totalBytes += int(v)
	}
	return perProtocolMsgs, totalMsgs, totalBytes
}

// Stop shuts the deployment down.
func (d *SimulatedDeployment) Stop() {
	d.stopOnce.Do(func() {
		d.net.Stop()
		d.mu.Lock()
		clients := d.clients
		d.mu.Unlock()
		for _, c := range clients {
			c.Close()
		}
		d.mu.Lock()
		nodes := append([]*core.Node(nil), d.nodes...)
		d.mu.Unlock()
		for _, n := range nodes {
			if n != nil {
				n.Stop()
			}
		}
	})
}
