package sintra_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"sintra"
)

// soakMachine is a minimal deterministic Snapshotter service for the
// memory soak: constant-size state (a running hash), so any heap growth
// the soak observes belongs to the protocol stack, not the application.
type soakMachine struct {
	mu    sync.Mutex
	state [32]byte
}

func (m *soakMachine) Apply(seq int64, request []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := sha256.New()
	h.Write(m.state[:])
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(seq))
	h.Write(sb[:])
	h.Write(request)
	copy(m.state[:], h.Sum(nil))
	return append([]byte(nil), m.state[:]...)
}

func (m *soakMachine) Snapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.state[:]...)
}

func (m *soakMachine) Restore(snapshot []byte) error {
	if len(snapshot) != len(m.state) {
		return fmt.Errorf("soak snapshot has %d bytes, want %d", len(snapshot), len(m.state))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.state[:], snapshot)
	return nil
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// TestSoakBoundedMemory drives thousands of deliveries through an n=4
// cluster with checkpointing on and asserts that every map the
// checkpoint/GC subsystem is responsible for stays bounded: the
// delivered-digest dedup set, the router tombstone set, and the request
// bookkeeping all plateau instead of growing with the run, and the heap
// itself levels off. This is the regression test for the unbounded-growth
// leaks: before checkpointing, delivered/tombstones/reqClients all grew
// linearly forever.
func TestSoakBoundedMemory(t *testing.T) {
	total := 5000
	if testing.Short() {
		total = 1000
	}
	const interval = 32
	dep, err := sintra.NewDeployment(
		mustThreshold(t, 4, 1),
		func() sintra.StateMachine { return &soakMachine{} },
		sintra.WithSeed(97),
		sintra.WithCheckpointInterval(interval),
		sintra.WithBatchSize(8, 64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	const workers = 8
	clients := make([]*sintra.Client, workers)
	for i := range clients {
		if clients[i], err = dep.NewClient(); err != nil {
			t.Fatal(err)
		}
	}

	run := func(n, offset int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					req := fmt.Appendf(nil, "soak-%d", offset+i)
					if _, err := clients[w].Invoke(req, 120*time.Second); err != nil {
						t.Errorf("request %d: %v", offset+i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// First half, heap reading, second half, heap reading: a leak that
	// grows with deliveries shows up as first-half-sized growth across the
	// second half; bounded operation shows a plateau.
	run(total/2, 0)
	heapMid := heapInUse()
	run(total-total/2, total/2)
	heapEnd := heapInUse()

	snap := dep.Metrics()
	seq := dep.Node(0).Seq()
	if seq < int64(total) {
		t.Fatalf("delivery frontier %d < %d requests", seq, total)
	}

	// The stable checkpoint must have tracked the frontier...
	stable := snap.Gauges["checkpoint.stable.seq"].Value
	if stable < seq-4*interval {
		t.Fatalf("stable checkpoint %d lags frontier %d by more than 4 intervals", stable, seq)
	}
	// ...and pruning below it must actually have freed entries.
	if n := snap.Counter("checkpoint.gc.freed"); n == 0 {
		t.Fatal("checkpoint GC never freed a delivered-digest entry")
	}

	// Bounded maps, by high-water mark — these are per-run peaks across
	// all four replicas, so the bounds are generous multiples of the
	// per-replica targets yet far below the unbounded-growth failure mode
	// (which would scale with total deliveries).
	if hw := snap.Gauges["abc.delivered.size"].Max; hw > 16*interval {
		t.Errorf("delivered dedup set peaked at %d entries (> %d): GC horizon not keeping up", hw, 16*interval)
	}
	if hw := snap.Gauges["engine.tombstones"].Max; hw > 4096 {
		t.Errorf("router tombstones peaked at %d (> 4096 hard bound)", hw)
	}
	if hw := snap.Gauges["node.reqclients.size"].Max; hw > 4096 {
		t.Errorf("request bookkeeping peaked at %d entries (> 4096 hard bound)", hw)
	}
	if n := snap.Counter("router.panics"); n != 0 {
		t.Fatalf("router recovered %d handler panics during the soak", n)
	}

	// Heap plateau: the second half must not add first-half-scale memory.
	// The slack absorbs allocator noise and metrics history.
	const slack = 64 << 20
	if heapEnd > heapMid+slack {
		t.Errorf("heap grew from %d to %d bytes across the second half: unbounded growth", heapMid, heapEnd)
	}
	t.Logf("seq=%d stable=%d freed=%d delivered.max=%d tombstones.max=%d reqclients.max=%d heap mid=%dKiB end=%dKiB",
		seq, stable, snap.Counter("checkpoint.gc.freed"),
		snap.Gauges["abc.delivered.size"].Max,
		snap.Gauges["engine.tombstones"].Max,
		snap.Gauges["node.reqclients.size"].Max,
		heapMid>>10, heapEnd>>10)
}

// TestSoakWALBounded drives thousands of deliveries through an n=4
// cluster with the durability journal on and asserts that checkpoint
// stability actually truncates the log: after ~5k deliveries every
// replica's on-disk WAL must be a small live tail, not a transcript of
// the whole run (which would be several MB of journaled messages per
// replica and grow forever).
func TestSoakWALBounded(t *testing.T) {
	total := 5000
	if testing.Short() {
		total = 1000
	}
	const interval = 32
	dep, err := sintra.NewDeployment(
		mustThreshold(t, 4, 1),
		func() sintra.StateMachine { return &soakMachine{} },
		sintra.WithSeed(101),
		sintra.WithCheckpointInterval(interval),
		sintra.WithBatchSize(8, 64),
		sintra.WithDataDir(t.TempDir()),
		sintra.WithWALSyncInterval(-1), // throwaway data: size, not fsync, is under test
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	const workers = 8
	clients := make([]*sintra.Client, workers)
	for i := range clients {
		if clients[i], err = dep.NewClient(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				req := fmt.Appendf(nil, "wal-soak-%d", i)
				if _, err := clients[w].Invoke(req, 120*time.Second); err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := dep.Metrics()
	if seq := dep.Node(0).Seq(); seq < int64(total) {
		t.Fatalf("delivery frontier %d < %d requests", seq, total)
	}
	// The journal must have been busy — a bound over an idle log proves
	// nothing.
	records := snap.Counter("wal.records")
	if records < int64(total) {
		t.Fatalf("only %d journaled records across %d deliveries", records, total)
	}
	// Bounded on disk, per replica: the live tail spans a few checkpoint
	// intervals of protocol traffic, orders of magnitude below the full
	// transcript.
	const sizeBound = 4 << 20
	for i := 0; i < 4; i++ {
		j := dep.Node(i).Journal()
		if j == nil {
			t.Fatalf("replica %d has no journal", i)
		}
		if size := j.Size(); size > sizeBound {
			t.Errorf("replica %d WAL is %d bytes (> %d): checkpoint truncation not keeping up", i, size, sizeBound)
		}
	}
	if n := snap.Counter("router.panics"); n != 0 {
		t.Fatalf("router recovered %d handler panics during the WAL soak", n)
	}
	t.Logf("records=%d size0=%dKiB stable=%d", records,
		dep.Node(0).Journal().Size()>>10, snap.Gauges["checkpoint.stable.seq"].Value)
}

func mustThreshold(t *testing.T, n, f int) *sintra.Structure {
	t.Helper()
	st, err := sintra.NewThresholdStructure(n, f)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
