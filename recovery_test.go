package sintra_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"sintra"
	"sintra/internal/faultsim"
)

// waitFrontier blocks until the replica catches the given delivery
// frontier (or the deadline passes).
func waitFrontier(t *testing.T, dep *sintra.SimulatedDeployment, replica int, target int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for dep.Node(replica).Seq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica %d stuck at seq %d, live frontier %d",
				replica, dep.Node(replica).Seq(), target)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertRestartedConsistent compares the restarted replica's post-restart
// execution against a continuously-live replica wherever they share a
// sequence number: amnesia-free recovery must reproduce the exact chain.
func assertRestartedConsistent(t *testing.T, c *chainCluster, restarted *chainMachine, live int) {
	t.Helper()
	hist := restarted.history()
	if len(hist) == 0 {
		t.Fatal("restarted replica never applied a request after recovery")
	}
	bySeq := make(map[int64][32]byte)
	for _, e := range c.machines[live].history() {
		bySeq[e.seq] = e.state
	}
	matched := 0
	for _, e := range hist {
		ref, ok := bySeq[e.seq]
		if !ok {
			continue
		}
		if ref != e.state {
			t.Fatalf("restarted replica diverged at seq %d — equivocation or state corruption", e.seq)
		}
		matched++
	}
	if matched == 0 {
		t.Fatal("restarted replica shares no sequence numbers with a live replica")
	}
}

// TestChaosDurableCrashMidProtocol is the headline durability scenario:
// an adversarially timed crash wedges replica 2's journal at a chosen
// record — mid-round, after some votes and echoes are committed to disk
// but before the round completes — muting it instantly. The replica is
// then killed and revived FROM ITS JOURNAL. Recovery must replay the
// vote ledger so the replica can only ever repeat its recorded messages,
// never contradict them: the cluster keeps liveness throughout, the
// revived replica reaches the live frontier, honest histories stay
// identical, and no replica panics. Run under -race by the chaos CI job.
func TestChaosDurableCrashMidProtocol(t *testing.T) {
	dir := t.TempDir()
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(51),
		sintra.WithCheckpointInterval(8),
		sintra.WithDataDir(dir),
		sintra.WithWALSyncInterval(-1),
		// Crash replica 2 the moment it tries to journal record 40:
		// several rounds of commitments are on disk, the current round is
		// half-spoken.
		sintra.WithWALCrashPoint(2, func(lsn uint64) bool { return lsn >= 40 }),
	)
	client, err := c.dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke := func(i int) {
		req := []byte(fmt.Sprintf("durable-request-%d", i))
		ans, err := client.Invoke(req, 120*time.Second)
		if err != nil {
			t.Fatalf("request %d: liveness lost: %v", i, err)
		}
		if err := sintra.VerifyAnswer(c.dep.Public, "service", ans.ReqID, ans.Result, ans.Signature); err != nil {
			t.Fatalf("request %d: answer does not verify: %v", i, err)
		}
	}

	// Phase 1: drive load until the crash point fires. The cluster keeps
	// ordering — a wedged journal mutes the replica (a benign crash), it
	// never lets an unjournaled message out.
	for i := 0; i < 6; i++ {
		invoke(i)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !c.dep.Node(2).Journal().Wedged() {
		if time.Now().After(deadline) {
			t.Fatal("crash point never fired: replica 2 journaled fewer than 40 records")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 2: kill it and keep the cluster moving past a checkpoint.
	c.dep.StopServer(2)
	for i := 6; i < 18; i++ {
		invoke(i)
	}

	// Phase 3: amnesia-free restart from the journal.
	if err := c.dep.RestartServerDurable(2); err != nil {
		t.Fatalf("durable restart: %v", err)
	}
	j := c.dep.Node(2).Journal()
	if j == nil || j.Recovered() == 0 {
		t.Fatal("durable restart recovered no journaled commitments")
	}
	restarted := c.machines[len(c.machines)-1]
	for i := 18; i < 24; i++ {
		invoke(i)
	}
	waitFrontier(t, c.dep, 2, c.dep.Node(0).Seq())

	snap := c.dep.Metrics()
	if n := snap.Counter("router.panics"); n != 0 {
		t.Fatalf("router recovered %d handler panics across the crash cycle", n)
	}
	if n := snap.Counter("wal.records"); n == 0 {
		t.Fatal("nothing was ever journaled")
	}
	assertRestartedConsistent(t, c, restarted, 0)
	// The continuously-live replicas (index 4 is the restarted fresh
	// machine, compared by seq above) must agree position by position.
	c.assertReplicasConsistent(t, 4)
	t.Logf("recovered=%d replayed=%d records=%d",
		j.Recovered(), snap.Counter("wal.replayed"), snap.Counter("wal.records"))
}

// TestChaosDurableRestartDamagedTail injects the two storage faults a
// real power failure leaves behind — a torn (truncated) frame and a
// bit-flipped tail — into a killed replica's WAL, then revives it from
// the damaged journal. Recovery must detect the damage via frame
// checksums, discard exactly the broken tail, and rejoin safely on the
// surviving prefix: re-sending only commitments that were durably
// recorded can never equivocate.
func TestChaosDurableRestartDamagedTail(t *testing.T) {
	faults := []struct {
		name   string
		damage func(serverDir string) error
	}{
		{"power-fail-truncate", func(d string) error { return faultsim.TruncateWALTail(d, 5) }},
		{"corrupt-tail", faultsim.CorruptWALTail},
	}
	for i, fault := range faults {
		fault, i := fault, i
		t.Run(fault.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			c := newChainCluster(t, 4, 1,
				sintra.WithSeed(int64(61+i)),
				sintra.WithCheckpointInterval(8),
				sintra.WithDataDir(dir),
				sintra.WithWALSyncInterval(-1),
			)
			client, err := c.dep.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			invoke := func(k int) {
				ans, err := client.Invoke([]byte(fmt.Sprintf("tail-request-%d", k)), 120*time.Second)
				if err != nil {
					t.Fatalf("request %d: liveness lost: %v", k, err)
				}
				if err := sintra.VerifyAnswer(c.dep.Public, "service", ans.ReqID, ans.Result, ans.Signature); err != nil {
					t.Fatalf("request %d: answer does not verify: %v", k, err)
				}
			}
			for k := 0; k < 6; k++ {
				invoke(k)
			}
			c.dep.StopServer(2)
			if err := fault.damage(filepath.Join(dir, "server2")); err != nil {
				t.Fatalf("injecting %s: %v", fault.name, err)
			}
			for k := 6; k < 12; k++ {
				invoke(k)
			}
			if err := c.dep.RestartServerDurable(2); err != nil {
				t.Fatalf("durable restart over damaged WAL: %v", err)
			}
			j := c.dep.Node(2).Journal()
			if j.TornBytes() == 0 {
				t.Fatalf("%s: recovery reported no discarded tail bytes", fault.name)
			}
			restarted := c.machines[len(c.machines)-1]
			for k := 12; k < 16; k++ {
				invoke(k)
			}
			waitFrontier(t, c.dep, 2, c.dep.Node(0).Seq())
			if n := c.dep.Metrics().Counter("router.panics"); n != 0 {
				t.Fatalf("router recovered %d handler panics after tail damage", n)
			}
			assertRestartedConsistent(t, c, restarted, 0)
			c.assertReplicasConsistent(t, 4)
		})
	}
}

// TestWALCrashPointMatrix kills replica 1 at EVERY early WAL record
// index — each subtest wedges the journal exactly at record k, so the
// crash lands at a different protocol stage every time: before the first
// message, mid-RBC, between a BVAL and its AUX, after a coin share —
// then revives the replica from its journal and requires convergence
// with zero equivocation. Deterministic seeds make every crash point
// reproducible.
func TestWALCrashPointMatrix(t *testing.T) {
	points := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if testing.Short() {
		points = []uint64{0, 3, 7, 11}
	}
	for _, k := range points {
		k := k
		t.Run(fmt.Sprintf("record-%d", k), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			c := newChainCluster(t, 4, 1,
				sintra.WithSeed(int64(300+k)),
				sintra.WithCheckpointInterval(4),
				sintra.WithDataDir(dir),
				sintra.WithWALSyncInterval(-1),
				sintra.WithWALCrashPoint(1, func(lsn uint64) bool { return lsn >= k }),
			)
			client, err := c.dep.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			invoke := func(i int) {
				ans, err := client.Invoke([]byte(fmt.Sprintf("matrix-%d-%d", k, i)), 120*time.Second)
				if err != nil {
					t.Fatalf("request %d: liveness lost with replica crashed at record %d: %v", i, k, err)
				}
				if err := sintra.VerifyAnswer(c.dep.Public, "service", ans.ReqID, ans.Result, ans.Signature); err != nil {
					t.Fatalf("request %d: answer does not verify: %v", i, err)
				}
			}
			// The first appends hit within the first request; the cluster
			// must stay live with the replica muted at record k.
			for i := 0; i < 6; i++ {
				invoke(i)
			}
			if !c.dep.Node(1).Journal().Wedged() {
				t.Fatalf("crash point %d never fired", k)
			}
			c.dep.StopServer(1)
			if err := c.dep.RestartServerDurable(1); err != nil {
				t.Fatalf("durable restart: %v", err)
			}
			restarted := c.machines[len(c.machines)-1]
			for i := 6; i < 10; i++ {
				invoke(i)
			}
			waitFrontier(t, c.dep, 1, c.dep.Node(0).Seq())
			if n := c.dep.Metrics().Counter("router.panics"); n != 0 {
				t.Fatalf("router recovered %d handler panics (crash point %d)", n, k)
			}
			assertRestartedConsistent(t, c, restarted, 0)
			c.assertReplicasConsistent(t, 4)
		})
	}
}
