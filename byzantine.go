package sintra

import (
	"sintra/internal/faultsim"
	"sintra/internal/netsim"
)

// Byzantine fault-injection re-exports. The faultsim package turns chosen
// parties actively malicious — the corruption model the paper's protocols
// are designed for (§2) — by wrapping their transport with composable
// attack behaviors. Pair with WithByzantine on the simulated deployment,
// or wrap any wire.Transport directly with faultsim.Wrap in bespoke
// harnesses. Attack activity is reported under the "faultsim.*" metric
// names; replicas count survived garbage in "router.malformed".
type (
	// ByzantineBehavior is one composable attack applied to a corrupted
	// party's outbound traffic.
	ByzantineBehavior = faultsim.Behavior
	// ByzantineParty is a transport wrapped with attack behaviors.
	ByzantineParty = faultsim.Party

	// NetworkScheduler decides the delivery order of the simulated
	// asynchronous network — "the network is the adversary".
	NetworkScheduler = netsim.Scheduler
	// PartitionScheduler isolates a subset of parties until a configured
	// number of deliveries has healed the partition.
	PartitionScheduler = netsim.PartitionScheduler
)

// Byzantine behavior constructors.
var (
	// Equivocate sends different payloads of the same protocol step to
	// different recipients.
	Equivocate = faultsim.Equivocate
	// Mutate flips payload bytes with the given probability.
	Mutate = faultsim.Mutate
	// TamperTail flips a bit in the payload's trailing value bytes with
	// the given probability, yielding messages that usually still decode
	// but carry cryptographically wrong shares.
	TamperTail = faultsim.TamperTail
	// Replay re-sends previously observed messages with the given
	// probability.
	Replay = faultsim.Replay
	// Duplicate sends extra identical copies of every message.
	Duplicate = faultsim.Duplicate
	// Drop silences outbound traffic with the given probability.
	Drop = faultsim.Drop
	// DropTo silences outbound traffic to chosen recipients only.
	DropTo = faultsim.DropTo
	// Flood attaches junk envelopes with fresh instance names and unknown
	// types to every outbound message.
	Flood = faultsim.Flood
)

// Network scheduler constructors.
var (
	// NewRandomScheduler is a fair scheduler under a deterministic seed.
	NewRandomScheduler = netsim.NewRandomScheduler
	// NewDelayScheduler starves messages matching a predicate for as long
	// as other traffic is pending.
	NewDelayScheduler = netsim.NewDelayScheduler
	// NewPartitionScheduler isolates the listed parties until healAfter
	// deliveries have passed.
	NewPartitionScheduler = netsim.NewPartitionScheduler
)
