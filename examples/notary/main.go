// Command notary demonstrates the paper's §5.2 scenario: a distributed
// digital notary whose submissions travel by SECURE CAUSAL atomic
// broadcast. Requests are threshold-encrypted by the client, so a
// corrupted server that sees a submission in flight can neither read it
// nor have a related request of its own scheduled first — the
// front-running competitor of the patent-office story loses.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sintra"
	"sintra/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "notary:", err)
		os.Exit(1)
	}
}

func run() error {
	st, err := sintra.NewThresholdStructure(4, 1)
	if err != nil {
		return err
	}
	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return sintra.NewNotary() },
		sintra.WithServiceName("notary"),
		sintra.WithMode(sintra.ModeSecureCausal),
		sintra.WithSeed(7),
	)
	if err != nil {
		return err
	}
	defer dep.Stop()

	inventor, err := dep.NewClient()
	if err != nil {
		return err
	}
	competitor, err := dep.NewClient()
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	patent := []byte("claim 1: a perpetual motion machine comprising ...")

	// The inventor registers first. The request leaves the client as a
	// TDH2 ciphertext; servers decrypt it only AFTER atomic broadcast has
	// fixed its position, so its content cannot influence scheduling.
	req, _ := json.Marshal(service.NotaryRequest{Op: service.OpRegister, Document: patent})
	ans, err := inventor.InvokeContext(ctx, req)
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	var resp service.NotaryResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil {
		return err
	}
	fmt.Printf("inventor's receipt: sequence number %d, digest %x...\n", resp.Seq, resp.Digest[:8])
	if err := sintra.VerifyAnswer(dep.Public, "notary", ans.ReqID, ans.Result, ans.Signature); err != nil {
		return fmt.Errorf("receipt signature: %w", err)
	}
	fmt.Println("threshold-signed receipt verifies ✓")

	// The competitor tries to register the same invention afterwards: the
	// notary's state machine answers with the ORIGINAL sequence number and
	// marks the registration as pre-existing.
	late, err := competitor.InvokeContext(ctx, req)
	if err != nil {
		return fmt.Errorf("late register: %w", err)
	}
	var lateResp service.NotaryResponse
	if err := json.Unmarshal(late.Result, &lateResp); err != nil {
		return err
	}
	fmt.Printf("competitor's attempt: existing=%v, original sequence %d — priority kept by the inventor\n",
		lateResp.Existing, lateResp.Seq)

	// A lookup receipt is verifiable by anyone (e.g. a court).
	req, _ = json.Marshal(service.NotaryRequest{Op: service.OpLookup, Document: patent})
	look, err := inventor.InvokeContext(ctx, req)
	if err != nil {
		return err
	}
	if err := sintra.VerifyAnswer(dep.Public, "notary", look.ReqID, look.Result, look.Signature); err != nil {
		return err
	}
	fmt.Printf("lookup (signed): %s\n", look.Result)
	return nil
}
