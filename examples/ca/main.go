// Command ca demonstrates the distributed certification authority of the
// paper's §5.1 on the nine-server Example 1 structure: certificates are
// issued through atomic broadcast, and the CA's signing key never exists
// in one place — even after the adversary takes over every server of one
// whole class, certificates keep being issued and verifying.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sintra"
	"sintra/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ca:", err)
		os.Exit(1)
	}
}

func run() error {
	// Example 1: nine servers; servers 0-3 run class-a systems, 4-5 class
	// b, 6-7 class c, 8 class d. The adversary may corrupt any two
	// arbitrary servers or ALL servers of one class.
	st := sintra.Example1Structure()
	fmt.Printf("structure: %d servers, classes a={0..3} b={4,5} c={6,7} d={8}\n", st.N())
	fmt.Printf("Q3 satisfied: %v\n\n", st.Q3())

	// The whole of class a falls to a common exploit.
	crashed := []int{0, 1, 2, 3}
	fmt.Printf("corrupting all of class a: servers %v (4 of 9 — any threshold scheme would need n > 12)\n\n", crashed)

	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return sintra.NewDirectory() },
		sintra.WithServiceName("ca"),
		sintra.WithCrashed(crashed...),
		sintra.WithSeed(5),
	)
	if err != nil {
		return err
	}
	defer dep.Stop()

	client, err := dep.NewClient()
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	users := []string{"alice@example.com", "bob@example.com", "carol@example.com"}
	for _, user := range users {
		req, _ := json.Marshal(service.DirectoryRequest{
			Op: service.OpIssue, Name: user, PubKey: []byte("pk-of-" + user),
		})
		ans, err := client.InvokeContext(ctx, req)
		if err != nil {
			return fmt.Errorf("issue %s: %w", user, err)
		}
		var resp service.DirectoryResponse
		if err := json.Unmarshal(ans.Result, &resp); err != nil {
			return err
		}
		if err := sintra.VerifyAnswer(dep.Public, "ca", ans.ReqID, ans.Result, ans.Signature); err != nil {
			return fmt.Errorf("certificate for %s does not verify: %w", user, err)
		}
		fmt.Printf("issued certificate serial=%d for %-20s — threshold signature verifies ✓\n",
			resp.Certificate.Serial, user)
	}

	// Tampering with an issued certificate must break verification.
	req, _ := json.Marshal(service.DirectoryRequest{Op: service.OpIssue, Name: "mallory", PubKey: []byte("pk")})
	ans, err := client.InvokeContext(ctx, req)
	if err != nil {
		return err
	}
	forged := append([]byte(nil), ans.Result...)
	forged[len(forged)-2] ^= 1
	if err := sintra.VerifyAnswer(dep.Public, "ca", ans.ReqID, forged, ans.Signature); err == nil {
		return fmt.Errorf("forged certificate verified")
	}
	fmt.Println("tampered certificate correctly rejected ✓")
	return nil
}
