// Command multisite runs the paper's §4.3 Example 2: a secure directory
// for a multi-national company on sixteen servers in New York, Tokyo,
// Zurich, and Haifa, running AIX, Windows NT, Linux, and Solaris (one
// server per combination). The generalized adversary structure tolerates
// the SIMULTANEOUS loss of one whole location and one whole operating
// system — seven servers — while any threshold scheme on sixteen servers
// tolerates at most five. The demo crashes exactly those seven servers
// and shows the service still answering.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sintra"
	"sintra/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multisite:", err)
		os.Exit(1)
	}
}

// party returns the server index at (location, system), location-major.
func party(location, system int) int { return location*4 + system }

func run() error {
	locations := []string{"NewYork", "Tokyo", "Zurich", "Haifa"}
	systems := []string{"AIX", "WindowsNT", "Linux", "Solaris"}

	st := sintra.Example2Structure()
	tol, err := st.MaxTolerated()
	if err != nil {
		return err
	}
	fmt.Printf("structure: 16 servers = 4 locations × 4 operating systems\n")
	fmt.Printf("Q3 satisfied: %v; largest tolerated corruption: %d servers\n", st.Q3(), tol)
	fmt.Printf("best threshold scheme on 16 servers tolerates: t = %d (needs n > 3t)\n\n", (16-1)/3)

	// The adversary takes out ALL of New York and ALL Solaris machines.
	var crashed []int
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for _, p := range []int{party(0, i), party(i, 3)} {
			if !seen[p] {
				seen[p] = true
				crashed = append(crashed, p)
			}
		}
	}
	fmt.Printf("crashing %d servers (all of %s + every %s box):\n", len(crashed), locations[0], systems[3])
	for _, p := range crashed {
		fmt.Printf("  server %2d — %s/%s\n", p, locations[p/4], systems[p%4])
	}

	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return sintra.NewDirectory() },
		sintra.WithServiceName("directory"),
		sintra.WithCrashed(crashed...),
		sintra.WithSeed(11),
	)
	if err != nil {
		return err
	}
	defer dep.Stop()

	client, err := dep.NewClient()
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	fmt.Println("\nwith 7 of 16 servers down, the directory still operates:")
	req, _ := json.Marshal(service.DirectoryRequest{Op: service.OpPut, Key: "hr/payroll", Value: "ledger-v42"})
	if _, err := client.InvokeContext(ctx, req); err != nil {
		return fmt.Errorf("put: %w", err)
	}
	req, _ = json.Marshal(service.DirectoryRequest{Op: service.OpGet, Key: "hr/payroll"})
	ans, err := client.InvokeContext(ctx, req)
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	var resp service.DirectoryResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil {
		return err
	}
	fmt.Printf("  get hr/payroll -> %q (version %d)\n", resp.Value, resp.Version)
	if err := sintra.VerifyAnswer(dep.Public, "directory", ans.ReqID, ans.Result, ans.Signature); err != nil {
		return err
	}
	fmt.Println("  threshold-signed answer verifies ✓")
	fmt.Println("\na threshold deployment with t=5 would have lost liveness and safety at 7 corruptions")
	return nil
}
