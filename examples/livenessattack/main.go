// Command livenessattack demonstrates the argument at the heart of the
// paper's §2.2 — why SINTRA refuses timing assumptions — by racing two
// protocols against the same class of network adversary:
//
//  1. A deterministic failure-detector protocol (rotating leader +
//     timeout view changes, the Rampart/SecureRing/CL99 family) against
//     the "leader stalker", which delays each leader's messages just
//     beyond the timeout. The protocol churns through views forever and
//     never delivers anything.
//
//  2. The randomized SINTRA atomic broadcast against a scheduler that
//     completely starves one replica. It keeps delivering: termination
//     holds under every scheduler, by the power of the threshold coin.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/baseline"
	"sintra/internal/deal"
	"sintra/internal/engine"
	"sintra/internal/group"
	"sintra/internal/netsim"
	"sintra/internal/wire"
)

const window = 2 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livenessattack:", err)
		os.Exit(1)
	}
}

// runCluster deals keys and spins routers for the four parties.
func runCluster(sched netsim.Scheduler) (*netsim.Network, []*engine.Router, *deal.Public, []*deal.PartySecret, func(), error) {
	st := adversary.MustThreshold(4, 1)
	pub, secrets, err := deal.New(deal.Options{
		Group:     group.Test256(),
		Structure: st,
		RSAPrimes: deal.TestPrimes256(),
	})
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	nw := netsim.New(4, 0, sched)
	routers := make([]*engine.Router, 4)
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		routers[i] = engine.NewRouter(nw.Endpoint(i))
		r := routers[i]
		go func() {
			r.Run()
			done <- struct{}{}
		}()
	}
	stop := func() {
		nw.Stop()
		for i := 0; i < 4; i++ {
			<-done
		}
	}
	return nw, routers, pub, secrets, stop, nil
}

func run() error {
	st := adversary.MustThreshold(4, 1)

	fmt.Println("== round 1: deterministic failure-detector protocol vs. the leader stalker ==")
	fmt.Println("the adversary reads the view number off the wire and holds each leader's")
	fmt.Println("messages until the timeout has voted it out — over and over.")
	stalker := baseline.NewLeaderStalker(st, netsim.NewRandomScheduler(3))
	_, routers, _, _, stop, err := runCluster(stalker)
	if err != nil {
		return err
	}
	nodes := make([]*baseline.Node, 4)
	for i := 0; i < 4; i++ {
		nodes[i] = baseline.New(baseline.Config{
			Router: routers[i], Struct: st, Instance: "demo",
			Timeout: 25 * time.Millisecond,
		})
	}
	_ = nodes[1].Submit([]byte("a request that will never be ordered"))
	time.Sleep(window)
	var views, delivered int64
	for _, n := range nodes {
		d, v := n.Stats()
		delivered += d
		if v > views {
			views = v
		}
	}
	for _, n := range nodes {
		n.Stop()
	}
	stop()
	fmt.Printf("after %v: %d deliveries, %d view changes — liveness denied\n\n", window, delivered, views)

	fmt.Println("== round 2: randomized SINTRA atomic broadcast vs. total starvation of replica 0 ==")
	starver := netsim.NewDelayScheduler(5, func(m *wire.Message) bool {
		return m.From == 0 || m.To == 0
	})
	_, routers, pub, secrets, stop, err := runCluster(starver)
	if err != nil {
		return err
	}
	var count atomic.Int64
	insts := make([]*abc.ABC, 4)
	for i := 0; i < 4; i++ {
		i := i
		routers[i].DoSync(func() {
			insts[i] = abc.New(abc.Config{
				Router: routers[i], Struct: st, Instance: "demo",
				Identity: pub.Identity, IDKey: secrets[i].Identity,
				Coin: pub.Coin, CoinKey: secrets[i].Coin,
				Scheme: pub.QuorumSig(), Key: secrets[i].SigQuorum,
				Deliver: func(int64, []byte) { count.Add(1) },
			})
		})
	}
	deadline := time.Now().Add(window)
	submitted := 0
	for time.Now().Before(deadline) {
		if err := insts[1].Broadcast([]byte(fmt.Sprintf("req-%d", submitted))); err != nil {
			stop()
			return err
		}
		submitted++
		for count.Load() < int64(4*submitted) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	stop()
	fmt.Printf("after %v: %d requests totally ordered by every replica — liveness intact\n",
		window, count.Load()/4)
	fmt.Println("\nrandomization beats the scheduler: no timeout to exploit, no leader to stalk.")
	return nil
}
