// Command quickstart runs the smallest possible SINTRA deployment — four
// replicas tolerating one Byzantine corruption, in-process over the
// adversarially scheduled simulated network — and exercises the secure
// directory: it issues a certificate, stores an entry, and reads it back,
// verifying the service's threshold signature on every answer.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sintra"
	"sintra/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. An adversary structure: classic 4 servers, one corruptible.
	st, err := sintra.NewThresholdStructure(4, 1)
	if err != nil {
		return err
	}
	fmt.Printf("structure: %v (Q3 satisfied: %v)\n", st, st.Q3())

	// 2. Deal keys and start the replicas (the trusted dealer runs once).
	dep, err := sintra.NewSimulatedDeployment(sintra.SimOptions{
		Structure:   st,
		ServiceName: "directory",
		NewService:  func() sintra.StateMachine { return sintra.NewDirectory() },
		Seed:        42,
	})
	if err != nil {
		return err
	}
	defer dep.Stop()

	client, err := dep.NewClient()
	if err != nil {
		return err
	}

	// One deadline bounds the whole walkthrough; every invocation inherits
	// it through the context.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// 3. Obtain a certificate from the distributed CA.
	req, _ := json.Marshal(service.DirectoryRequest{
		Op: service.OpIssue, Name: "alice@example.com", PubKey: []byte("alice-public-key"),
	})
	ans, err := client.InvokeContext(ctx, req)
	if err != nil {
		return fmt.Errorf("issue: %w", err)
	}
	var resp service.DirectoryResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil {
		return err
	}
	fmt.Printf("certificate: serial=%d name=%s (ordered at seq %d)\n",
		resp.Certificate.Serial, resp.Certificate.Name, ans.Seq)

	// The threshold signature proves the answer came from the service as a
	// whole: no corruptible subset of servers can forge it.
	if err := sintra.VerifyAnswer(dep.Public, "directory", ans.ReqID, ans.Result, ans.Signature); err != nil {
		return fmt.Errorf("threshold signature: %w", err)
	}
	fmt.Println("threshold signature on the certificate verifies ✓")

	// 4. Use the directory: put then get.
	req, _ = json.Marshal(service.DirectoryRequest{Op: service.OpPut, Key: "dns:example.com", Value: "192.0.2.7"})
	if _, err := client.InvokeContext(ctx, req); err != nil {
		return fmt.Errorf("put: %w", err)
	}
	req, _ = json.Marshal(service.DirectoryRequest{Op: service.OpGet, Key: "dns:example.com"})
	ans, err = client.InvokeContext(ctx, req)
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	if err := json.Unmarshal(ans.Result, &resp); err != nil {
		return err
	}
	fmt.Printf("directory lookup: dns:example.com -> %s (version %d), signed answer ✓\n",
		resp.Value, resp.Version)

	msgs, total, bytes := dep.TrafficSummary()
	fmt.Printf("traffic: %d messages, %d bytes, per layer %v\n", total, bytes, msgs)
	return nil
}
