package sintra_test

import (
	"fmt"
	"testing"
	"time"

	"sintra"
)

// TestChaosGeneralizedExample2FullStack runs the complete ABC stack —
// RBC, CBC, ABA, MVBA, atomic broadcast, threshold signing, client
// invoke — on the paper's Example 2 generalized adversary structure
// (sixteen servers classified by location × operating system), under a
// corruption at the structure's claimed tolerance shape: one full
// location crashed plus one equivocating Byzantine server elsewhere.
// The corrupted set lies inside one maximal adversary set (location 0
// plus operating system 1), so liveness and safety must both hold, and
// every quorum predicate evaluated on the hot path exercises the
// generalized (maximal-set enumeration) code rather than the threshold
// fast path.
func TestChaosGeneralizedExample2FullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16-server stack in -short mode")
	}
	st := sintra.Example2Structure()
	var crashed []int
	for os := 0; os < 4; os++ {
		crashed = append(crashed, sintra.Example2Party(0, os))
	}
	byz := sintra.Example2Party(1, 1)

	isCrashed := make(map[int]bool, len(crashed))
	for _, i := range crashed {
		isCrashed[i] = true
	}
	// Replicas are constructed in ascending server order, skipping the
	// crashed ones, so creation order maps machines to the ordered list
	// of started servers.
	var machines []*chainMachine
	var machineServer []int
	for i := 0; i < st.N(); i++ {
		if !isCrashed[i] {
			machineServer = append(machineServer, i)
		}
	}
	dep, err := sintra.NewDeployment(st, func() sintra.StateMachine {
		m := &chainMachine{}
		machines = append(machines, m)
		return m
	},
		sintra.WithSeed(1234),
		sintra.WithCrashed(crashed...),
		sintra.WithByzantine(byz, sintra.Equivocate()),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Stop)
	if len(machines) != len(machineServer) {
		t.Fatalf("%d machines for %d started servers", len(machines), len(machineServer))
	}

	client, err := dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := int64(-1)
	for i := 0; i < 2; i++ {
		req := []byte(fmt.Sprintf("ex2-chaos-%d", i))
		ans, err := client.Invoke(req, 180*time.Second)
		if err != nil {
			t.Fatalf("request %d: liveness lost on Example 2: %v", i, err)
		}
		if err := sintra.VerifyAnswer(dep.Public, "service", ans.ReqID, ans.Result, ans.Signature); err != nil {
			t.Fatalf("request %d: answer does not verify: %v", i, err)
		}
		if ans.Seq <= lastSeq {
			t.Fatalf("request %d ordered at seq %d, not after %d", i, ans.Seq, lastSeq)
		}
		lastSeq = ans.Seq
	}
	if n := dep.Metrics().Counter("router.panics"); n != 0 {
		t.Fatalf("router recovered %d handler panics", n)
	}
	if n := dep.Metrics().Counter("faultsim.actions.equivocate"); n == 0 {
		t.Fatal("the Byzantine server never equivocated — the run attacked nothing")
	}

	// Every honest replica must have walked an identical state chain
	// over the common prefix; the Byzantine server's transport lies to
	// it, so its local state is excluded.
	refIdx := -1
	var ref []chainState
	for k, m := range machines {
		server := machineServer[k]
		if server == byz {
			continue
		}
		h := m.history()
		if refIdx < 0 {
			refIdx, ref = server, h
			continue
		}
		n := min(len(h), len(ref))
		for i := 0; i < n; i++ {
			if h[i] != ref[i] {
				t.Fatalf("replica %d diverged from replica %d at position %d", server, refIdx, i)
			}
		}
	}
}
