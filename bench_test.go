// Repository-level benchmarks: one per reproduced table/figure (see the
// experiment index in DESIGN.md §3 and the results in EXPERIMENTS.md).
// Regenerate everything with:
//
//	go test -bench=. -benchmem .
//	go run ./cmd/sintra-bench -exp all
package sintra_test

import (
	"testing"
	"time"

	"sintra/internal/bench"
)

// benchLayer drives one protocol layer of experiment S3 (the §3 stack
// diagram) end to end — n=4 servers over the simulated asynchronous
// network, 256-byte payloads, every honest party delivering — and reports
// the per-operation message and byte cost alongside the timing.
func benchLayer(b *testing.B, layer string) {
	b.Helper()
	row, err := bench.RunLayer(4, layer, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(row.MsgsPer, "msgs/op")
	b.ReportMetric(row.BytesPerOp, "wire-bytes/op")
}

// Experiment S3 — the protocol stack, bottom to top. The paper's shape to
// reproduce: reliable/consistent broadcast ≪ binary agreement < multi-
// valued agreement < atomic broadcast < secure causal atomic broadcast.
func BenchmarkS3ReliableBroadcast(b *testing.B)    { benchLayer(b, "rbc") }
func BenchmarkS3ConsistentBroadcast(b *testing.B)  { benchLayer(b, "cbc") }
func BenchmarkS3BinaryAgreement(b *testing.B)      { benchLayer(b, "aba") }
func BenchmarkS3MultiValuedAgreement(b *testing.B) { benchLayer(b, "mvba") }
func BenchmarkS3AtomicBroadcast(b *testing.B)      { benchLayer(b, "abc") }
func BenchmarkS3SecureCausalABC(b *testing.B)      { benchLayer(b, "scabc") }

// BenchmarkABC is the headline per-delivery latency number: atomic
// broadcast at n=7 (t=2), the paper's mid-size deployment. It is the
// benchmark the verification-pipeline work is measured against (see
// EXPERIMENTS.md "Verification pipeline").
func BenchmarkABC(b *testing.B) {
	row, err := bench.RunLayer(7, "abc", b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(row.MsgsPer, "msgs/op")
	b.ReportMetric(row.BytesPerOp, "wire-bytes/op")
}

// BenchmarkABCGroups reruns the headline n=7 atomic broadcast once per
// group backend — the end-to-end rows of the EXPERIMENTS.md modp2048 vs
// p256 comparison. modp2048 is the production-parameter Z_p* backend
// (expensive: seconds per op on this class of hardware), p256 the
// elliptic backend at equivalent security, test256 the usual test group.
func BenchmarkABCGroups(b *testing.B) {
	for _, name := range []string{"modp2048", "p256", "test256"} {
		b.Run(name, func(b *testing.B) {
			if err := bench.SetGroupName(name); err != nil {
				b.Fatal(err)
			}
			row, err := bench.RunLayer(7, "abc", b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(row.MsgsPer, "msgs/op")
			b.ReportMetric(row.BytesPerOp, "wire-bytes/op")
		})
	}
	if err := bench.SetGroupName("test256"); err != nil {
		b.Fatal(err)
	}
}

// Experiment A8 — expected-constant-round binary agreement with split
// inputs; reports the mean rounds per decision.
func BenchmarkA8AgreementRounds(b *testing.B) {
	rows, err := bench.RunABARounds([]int{4}, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rows[0].MeanRounds, "rounds/op")
	b.ReportMetric(rows[0].MeanMsgs, "msgs/op")
}

// Experiment F1 — the Figure 1 liveness comparison: each iteration runs
// the leader-stalking attack against the deterministic baseline and the
// party-starving attack against the randomized stack. The baseline must
// deliver nothing; the randomized stack must make progress.
func BenchmarkFigure1LivenessAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunF1(300 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.BaselineDelivered != 0 {
			b.Fatalf("baseline delivered %d under the stalker", res.BaselineDelivered)
		}
		if res.OursDelivered == 0 {
			b.Fatal("randomized stack made no progress under starvation")
		}
	}
}

// Experiments E1/E2 — the §4.3 worked examples, run live with the claimed
// worst-case corruption crashed.
func BenchmarkE1Example1(b *testing.B) {
	res, err := bench.RunExample1(b.N)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Q3 || res.MaxTolerated != 4 {
		b.Fatalf("paper claims violated: %+v", res)
	}
}

func BenchmarkE2Example2(b *testing.B) {
	res, err := bench.RunExample2(b.N)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Q3 || res.MaxTolerated != 7 {
		b.Fatalf("paper claims violated: %+v", res)
	}
}

// Experiment P5 — input causality: plain atomic broadcast exposes request
// contents to the network before ordering; secure causal atomic broadcast
// does not.
func BenchmarkP5InputCausality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunCausality()
		if err != nil {
			b.Fatal(err)
		}
		if !res.PlainLeaks || res.CausalLeaks {
			b.Fatalf("causality result inverted: %+v", res)
		}
	}
}

// Ablation AB1 — proposal batching: one iteration orders 16 requests at
// the given batch size; msgs/req drops as batches amortize agreements.
func benchBatch(b *testing.B, size int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunBatchAblation([]int{size}, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MsgsPerReq, "msgs/req")
	}
}

func BenchmarkAB1Batch1(b *testing.B)  { benchBatch(b, 1) }
func BenchmarkAB1Batch8(b *testing.B)  { benchBatch(b, 8) }
func BenchmarkAB1Batch32(b *testing.B) { benchBatch(b, 32) }

// Ablation AB2 — Shoup threshold RSA versus Ed25519 certificates driving
// the same atomic-broadcast workload.
func BenchmarkAB2SignatureSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunSigSchemeAblation(4, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BytesPer, "rsa-bytes/req")
		b.ReportMetric(rows[1].BytesPer, "cert-bytes/req")
	}
}

// Experiment T1 — tightness of the optimal n > 3t resilience bound: one
// iteration sweeps crash counts 0..t+1 plus equivocating-Byzantine counts
// 1..t and asserts progress exactly up to t faults.
func BenchmarkT1ResilienceBoundary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunToleranceSweep(4, 1, 1, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if (r.Faulty <= r.T) != r.Live {
				b.Fatalf("bound not tight at %d %s faults", r.Faulty, r.Fault)
			}
		}
	}
}
