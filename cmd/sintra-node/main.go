// Command sintra-node runs one replica of a distributed trusted service
// over TCP, from a configuration directory written by sintra-dealer.
//
//	sintra-node -config ./deploy -index 0 -service directory
//
// Start one process per server (multi-process on one box, or spread over
// machines). The node serves until interrupted.
//
// Observability: -debug-addr serves a plain-text /metrics endpoint, the
// full metrics snapshot as expvar under /debug/vars, and the standard
// /debug/pprof profiles; -metrics-interval periodically dumps the same
// text snapshot to stderr. When neither flag is given, no registry is
// created and the protocol hot path pays nothing.
package main

import (
	"bytes"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sintra"
	"sintra/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sintra-node:", err)
		os.Exit(1)
	}
}

func loadAddrs(dir string, n int) ([]string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "addrs.txt"))
	if err != nil {
		return nil, err
	}
	addrs := strings.Fields(string(raw))
	if len(addrs) != n {
		return nil, fmt.Errorf("addrs.txt lists %d servers, deployment has %d", len(addrs), n)
	}
	return addrs, nil
}

func run() error {
	var (
		config  = flag.String("config", "sintra-deploy", "configuration directory from sintra-dealer")
		index   = flag.Int("index", -1, "this server's index")
		svcName = flag.String("name", "directory", "service instance name")
		svcKind = flag.String("service", "directory", "application: directory | notary")
		mode    = flag.String("mode", "atomic", "dissemination: atomic | causal")
		listen  = flag.String("listen", "", "listen address override (default: own entry of addrs.txt)")
		groupCk = flag.String("group", "", "expected group backend (modp2048 | p256 | test512 | test256): refuse to start if the dealt configuration uses a different one")

		trustConfig = flag.String("trust-config", "", "JSON trust-configuration file selecting the quorum backend: omitted or mode \"symmetric\" keeps the deployment's shared adversary structure; mode \"asymmetric\" lists one fail-prone system per party (identical file on every replica)")

		ckptInterval = flag.Int64("checkpoint-interval", 0, "checkpoint/GC period in delivered requests (0: default, negative: disabled; atomic mode)")

		codedThreshold = flag.Int("coded-threshold", 0, "batch size in bytes above which proposals disseminate as digest headers plus erasure-coded reliable broadcast (0: default 4096, negative: disabled; identical on every replica)")
		chunkSize      = flag.Int("chunk-size", 0, "payload size in bytes above which client requests split into frames reassembled after ordering (0: default 65536, negative: disabled; atomic mode, identical on every replica)")
		dataDir      = flag.String("data-dir", "", "durable write-ahead log directory: protocol-critical messages are journaled before transmission, and a restart with the same directory recovers without amnesia (re-sending identical messages, never conflicting ones); empty disables durability (a restart rejoins via checkpoint catch-up with empty state)")

		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (empty: observability off)")
		metricsEvery = flag.Duration("metrics-interval", 0, "dump metrics to stderr this often (0: off)")
	)
	flag.Parse()

	pub, err := sintra.LoadPublic(*config)
	if err != nil {
		return err
	}
	n := pub.Structure.N()
	if *index < 0 || *index >= n {
		return fmt.Errorf("-index must be in [0,%d)", n)
	}
	// The group is fixed at dealing time and carried in public.gob; the
	// flag is an operator assertion that catches pointing a node at a
	// configuration dealt for a different backend before it joins.
	if *groupCk != "" && *groupCk != pub.GroupName {
		return fmt.Errorf("configuration %s was dealt for group %q, -group expects %q", *config, pub.GroupName, *groupCk)
	}
	secret, err := sintra.LoadPartySecret(*config, *index)
	if err != nil {
		return err
	}
	addrs, err := loadAddrs(*config, n)
	if err != nil {
		return err
	}
	bind := addrs[*index]
	if *listen != "" {
		bind = *listen
	}

	var qtrust sintra.Quorums
	if *trustConfig != "" {
		raw, err := os.ReadFile(*trustConfig)
		if err != nil {
			return err
		}
		spec, err := sintra.ParseTrustSpec(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", *trustConfig, err)
		}
		qtrust, err = spec.Build(pub.Structure)
		if err != nil {
			return fmt.Errorf("%s: %w", *trustConfig, err)
		}
	}

	var svc sintra.StateMachine
	switch *svcKind {
	case "directory":
		svc = sintra.NewDirectory()
	case "notary":
		svc = sintra.NewNotary()
	default:
		return fmt.Errorf("unknown service %q", *svcKind)
	}
	var m sintra.Mode
	switch *mode {
	case "atomic":
		m = sintra.ModeAtomic
	case "causal":
		m = sintra.ModeSecureCausal
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	tr, err := transport.NewServer(transport.Config{
		Self:       *index,
		N:          n,
		Addrs:      addrs,
		ListenAddr: bind,
		LinkKeys:   secret.LinkKeys,
	})
	if err != nil {
		return err
	}

	// Observability is strictly opt-in: without a registry every
	// instrument stays nil and the dispatch loop skips all bookkeeping.
	var reg *sintra.Registry
	if *debugAddr != "" || *metricsEvery > 0 {
		reg = sintra.NewRegistry()
		tr.SetObserver(reg)
	}

	node, err := sintra.NewNode(sintra.NodeConfig{
		Public:             pub,
		Secret:             secret,
		Transport:          tr,
		ServiceName:        *svcName,
		Service:            svc,
		Mode:               m,
		Trust:              qtrust,
		Observer:           reg,
		CheckpointInterval: *ckptInterval,
		CodedThreshold:     *codedThreshold,
		ChunkSize:          *chunkSize,
		DataDir:            *dataDir,
	})
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		expvar.Publish("sintra", expvar.Func(func() any { return reg.Snapshot() }))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			reg.Snapshot().WriteText(w)
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sintra-node: debug server:", err)
			}
		}()
		fmt.Printf("debug server on %s (/metrics, /debug/vars, /debug/pprof)\n", *debugAddr)
	}
	if *metricsEvery > 0 {
		go func() {
			tick := time.NewTicker(*metricsEvery)
			defer tick.Stop()
			for range tick.C {
				var buf bytes.Buffer
				reg.Snapshot().WriteText(&buf)
				fmt.Fprintf(os.Stderr, "--- metrics %s ---\n%s", time.Now().Format(time.RFC3339), buf.Bytes())
			}
		}()
	}
	fmt.Printf("server %d/%d serving %q (%s, %s) on %s\n", *index, n, *svcName, *svcKind, m, tr.Addr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		node.Run()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("shutting down")
		node.Stop()
	case <-done:
	}
	return nil
}
