// Command sintra-client invokes a running SINTRA deployment over TCP.
//
//	sintra-client -config ./deploy -op issue -cn alice -pubkey 0a0b0c
//	sintra-client -config ./deploy -op put -key dns:example -value 192.0.2.7
//	sintra-client -config ./deploy -op get -key dns:example
//	sintra-client -config ./deploy -name notary -service notary -mode causal \
//	    -op register -doc "my invention"
//
// Every answer is accepted only after servers beyond the adversary
// structure's reach agree, and carries the service's threshold signature,
// which the client verifies before printing.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sintra"
	"sintra/internal/service"
	"sintra/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sintra-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		config  = flag.String("config", "sintra-deploy", "configuration directory")
		svcName = flag.String("name", "directory", "service instance name")
		svcKind = flag.String("service", "directory", "application: directory | notary")
		mode    = flag.String("mode", "atomic", "dissemination: atomic | causal")
		op      = flag.String("op", "", "operation: issue|put|get (directory), register|lookup (notary)")
		cn      = flag.String("cn", "", "certificate subject name (issue)")
		pubkey  = flag.String("pubkey", "", "hex public key (issue)")
		key     = flag.String("key", "", "directory key (put/get)")
		value   = flag.String("value", "", "directory value (put)")
		doc     = flag.String("doc", "", "document content (register/lookup)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	pub, err := sintra.LoadPublic(*config)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(filepath.Join(*config, "addrs.txt"))
	if err != nil {
		return err
	}
	addrs := strings.Fields(string(raw))
	n := pub.Structure.N()
	if len(addrs) != n {
		return fmt.Errorf("addrs.txt lists %d servers, deployment has %d", len(addrs), n)
	}

	var m sintra.Mode
	switch *mode {
	case "atomic":
		m = sintra.ModeAtomic
	case "causal":
		m = sintra.ModeSecureCausal
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	var request []byte
	switch *svcKind {
	case "directory":
		var req service.DirectoryRequest
		switch *op {
		case service.OpIssue:
			pk, err := hex.DecodeString(*pubkey)
			if err != nil {
				return fmt.Errorf("bad -pubkey: %w", err)
			}
			req = service.DirectoryRequest{Op: service.OpIssue, Name: *cn, PubKey: pk}
		case service.OpPut:
			req = service.DirectoryRequest{Op: service.OpPut, Key: *key, Value: *value}
		case service.OpGet:
			req = service.DirectoryRequest{Op: service.OpGet, Key: *key}
		default:
			return fmt.Errorf("unknown directory op %q", *op)
		}
		request, _ = json.Marshal(req)
	case "notary":
		switch *op {
		case service.OpRegister, service.OpLookup:
			request, _ = json.Marshal(service.NotaryRequest{Op: *op, Document: []byte(*doc)})
		default:
			return fmt.Errorf("unknown notary op %q", *op)
		}
	default:
		return fmt.Errorf("unknown service %q", *svcKind)
	}

	// Random client index above the server range.
	clientID := n + 1 + rand.New(rand.NewSource(time.Now().UnixNano())).Intn(1<<16)
	tr, err := transport.NewClient(transport.Config{Self: clientID, N: n, Addrs: addrs})
	if err != nil {
		return err
	}
	client := sintra.NewClientOverTransport(pub, tr, *svcName, m)
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ans, err := client.InvokeContext(ctx, request)
	if err != nil {
		return err
	}
	if err := sintra.VerifyAnswer(pub, *svcName, ans.ReqID, ans.Result, ans.Signature); err != nil {
		return fmt.Errorf("answer signature does not verify: %w", err)
	}
	fmt.Printf("%s\n", ans.Result)
	fmt.Printf("seq=%d threshold-signature=verified (%d bytes)\n", ans.Seq, len(ans.Signature))
	return nil
}
