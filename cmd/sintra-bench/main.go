// Command sintra-bench regenerates the paper's tables and figures from
// the implementation (DESIGN.md §3 lists the experiment index):
//
//	sintra-bench -exp all          # everything (a few minutes)
//	sintra-bench -exp f1           # Figure 1 + the liveness attack
//	sintra-bench -exp stack        # §3 layer costs across n
//	sintra-bench -exp aba          # expected-constant-rounds agreement
//	sintra-bench -exp ex1 -exp ex2 # the §4.3 worked examples
//	sintra-bench -exp apps         # §5.2 input causality
//	sintra-bench -cpus 1,2,4       # stack scaling across GOMAXPROCS
//	sintra-bench -exp stack -group modp2048,p256  # backend comparison
//
// The -group flag selects the discrete-log group backend(s); a comma
// list reruns every selected experiment once per backend, tagging each
// table with the group name.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sintra/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sintra-bench:", err)
		os.Exit(1)
	}
}

type expList []string

func (e *expList) String() string     { return strings.Join(*e, ",") }
func (e *expList) Set(v string) error { *e = append(*e, v); return nil }

func run() error {
	var exps expList
	var (
		ops    = flag.Int("ops", 3, "operations per measured configuration")
		trials = flag.Int("trials", 10, "agreement trials per system size (aba)")
		sizes  = flag.String("sizes", "4,7,10,13,16", "system sizes for stack/aba sweeps")
		window = flag.Duration("window", 1500*time.Millisecond, "observation window for the f1 liveness attack")
		cpus   = flag.String("cpus", "", "comma list of GOMAXPROCS values: rerun the S3 stack per value with a scaling column")
		scaleN = flag.Int("scale-n", 7, "system size for the -cpus scaling and -batch sweeps")
		groups = flag.String("group", "", "comma list of group backends (modp2048 | p256 | test256 | test512): rerun the selected experiments per backend (default: SINTRA_GROUP or test256)")
	)
	batch := flag.String("batch", "", "batch-verification sweep: 'on', 'off', or 'on,off' to compare (runs the AB3 table)")
	ckpt := flag.String("ckpt", "", "checkpoint/GC sweep: 'on', 'off', or 'on,off' to compare end-to-end cost")
	quorums := flag.Bool("quorums", false, "quorum-predicate cost table: IsQuorum latency across threshold / generalized / asymmetric trust backends")
	wal := flag.String("wal", "", "write-ahead log sweep: 'on,off' compares durability cost end-to-end; add group-commit intervals ('on,1ms,5ms,off') to sweep the fsync batch window")
	coded := flag.String("coded", "", "coded-dissemination sweep: 'on', 'off', or 'on,off' to compare fragment dispersal against full-payload reliable broadcast (the CD table; pair with -payload and -sizes)")
	payload := flag.String("payload", "1024,16384,65536,262144", "comma list of payload sizes in bytes for the -coded sweep")
	flag.Var(&exps, "exp", "experiment: f1 | stack | aba | ex1 | ex2 | apps | tolerance | ablate | all (repeatable)")
	flag.Parse()
	if len(exps) == 0 && *cpus == "" && *batch == "" && *ckpt == "" && *wal == "" && *coded == "" && !*quorums {
		exps = expList{"all"}
	}

	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			return fmt.Errorf("bad -sizes entry %q", s)
		}
		ns = append(ns, n)
	}

	var payloads []int
	for _, s := range strings.Split(*payload, ",") {
		var b int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &b); err != nil {
			return fmt.Errorf("bad -payload entry %q", s)
		}
		payloads = append(payloads, b)
	}

	var cpuList []int
	if *cpus != "" {
		for _, s := range strings.Split(*cpus, ",") {
			var c int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &c); err != nil {
				return fmt.Errorf("bad -cpus entry %q", s)
			}
			cpuList = append(cpuList, c)
		}
	}

	groupList := []string{""} // empty: keep the harness default
	if *groups != "" {
		groupList = groupList[:0]
		for _, g := range strings.Split(*groups, ",") {
			groupList = append(groupList, strings.TrimSpace(g))
		}
	}

	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	for _, g := range groupList {
		if g != "" {
			if err := bench.SetGroupName(g); err != nil {
				return err
			}
		}
		if err := runExperiments(want, ns, cpuList, payloads, *ops, *trials, *window, *scaleN, *batch, *ckpt, *wal, *coded, *quorums); err != nil {
			return err
		}
	}
	return nil
}

func runExperiments(want map[string]bool, ns, cpuList, payloads []int, ops, trials int, window time.Duration, scaleN int, batch, ckpt, wal, coded string, quorums bool) error {
	all := want["all"]
	out := os.Stdout

	if all || want["f1"] {
		res, err := bench.RunF1(window)
		if err != nil {
			return err
		}
		bench.PrintFigure1(out, res)
		bench.Separator(out)
	}
	if all || want["stack"] {
		rows, err := bench.RunStack(ns, ops)
		if err != nil {
			return err
		}
		bench.PrintStack(out, rows)
		bench.Separator(out)
	}
	if all || want["aba"] {
		rows, err := bench.RunABARounds(ns, trials)
		if err != nil {
			return err
		}
		bench.PrintABARounds(out, rows)
		bench.Separator(out)
	}
	if all || want["ex1"] {
		res, err := bench.RunExample1(ops)
		if err != nil {
			return err
		}
		bench.PrintExample(out, res)
		bench.Separator(out)
	}
	if all || want["ex2"] {
		res, err := bench.RunExample2(ops)
		if err != nil {
			return err
		}
		bench.PrintExample(out, res)
		bench.Separator(out)
	}
	if all || want["apps"] {
		res, err := bench.RunCausality()
		if err != nil {
			return err
		}
		bench.PrintCausality(out, res)
		bench.Separator(out)
	}
	if all || want["tolerance"] {
		rows, err := bench.RunToleranceSweep(7, 2, 2, window)
		if err != nil {
			return err
		}
		bench.PrintToleranceSweep(out, rows)
		bench.Separator(out)
	}
	if len(cpuList) > 0 {
		rows, err := bench.RunStackScaling(scaleN, cpuList, ops)
		if err != nil {
			return err
		}
		bench.PrintStackScaling(out, scaleN, rows)
		bench.Separator(out)
	}
	if batch != "" {
		var modes []string
		for _, m := range strings.Split(batch, ",") {
			modes = append(modes, strings.TrimSpace(m))
		}
		rows, err := bench.RunBatchVerifySweep(scaleN, 16, modes)
		if err != nil {
			return err
		}
		bench.PrintBatchVerifySweep(out, rows)
		bench.Separator(out)
	}
	if ckpt != "" {
		var modes []string
		for _, m := range strings.Split(ckpt, ",") {
			modes = append(modes, strings.TrimSpace(m))
		}
		rows, err := bench.RunCheckpointSweep(scaleN, 64, modes)
		if err != nil {
			return err
		}
		bench.PrintCheckpointSweep(out, rows)
		bench.Separator(out)
	}
	if coded != "" {
		var modes []string
		for _, m := range strings.Split(coded, ",") {
			modes = append(modes, strings.TrimSpace(m))
		}
		rows, err := bench.RunCodedSweep(ns, payloads, modes, ops)
		if err != nil {
			return err
		}
		bench.PrintCodedSweep(out, rows)
		bench.Separator(out)
	}
	if quorums {
		rows, err := bench.RunQuorumPredicates()
		if err != nil {
			return err
		}
		bench.PrintQuorumPredicates(out, rows)
		bench.Separator(out)
	}
	if wal != "" {
		var modes []string
		for _, m := range strings.Split(wal, ",") {
			modes = append(modes, strings.TrimSpace(m))
		}
		rows, err := bench.RunWALSweep(scaleN, 64, modes)
		if err != nil {
			return err
		}
		bench.PrintWALSweep(out, rows)
		bench.Separator(out)
	}
	if all || want["ablate"] {
		rows, err := bench.RunBatchAblation([]int{1, 4, 16}, 16)
		if err != nil {
			return err
		}
		bench.PrintBatchAblation(out, rows)
		sig, err := bench.RunSigSchemeAblation(4, ops)
		if err != nil {
			return err
		}
		bench.PrintSigSchemeAblation(out, sig)
		bench.Separator(out)
	}
	return nil
}
