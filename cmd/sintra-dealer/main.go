// Command sintra-dealer is the trusted dealer (paper §2): it generates
// all key material of a deployment once and writes a configuration
// directory consumed by sintra-node and sintra-client.
//
//	sintra-dealer -out ./deploy -n 4 -t 1 -base-port 7000
//	sintra-dealer -out ./deploy -structure example2 -group modp2048
//
// The directory contains public.gob (safe to share), party-<i>.gob (one
// secret file per server; distribute over a secure channel and delete the
// dealer's copies), and addrs.txt (the servers' listen addresses).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sintra"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sintra-dealer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "sintra-deploy", "output configuration directory")
		n         = flag.Int("n", 4, "number of servers (threshold structure)")
		t         = flag.Int("t", 1, "corruption threshold (threshold structure)")
		structure = flag.String("structure", "threshold", "adversary structure: threshold | example1 | example2")
		groupName = flag.String("group", "modp2048", "discrete-log group backend: modp2048 | p256 | test512 | test256")
		basePort  = flag.Int("base-port", 7000, "first TCP port; server i listens on base-port+i")
		host      = flag.String("host", "127.0.0.1", "host/interface for the server addresses")
		addrsCSV  = flag.String("addrs", "", "comma-separated explicit server addresses (overrides host/base-port)")
		testKeys  = flag.Bool("test-rsa", false, "use the embedded (INSECURE) test RSA primes for fast setup")
	)
	flag.Parse()

	var st *sintra.Structure
	var err error
	switch *structure {
	case "threshold":
		st, err = sintra.NewThresholdStructure(*n, *t)
	case "example1":
		st = sintra.Example1Structure()
	case "example2":
		st = sintra.Example2Structure()
	default:
		return fmt.Errorf("unknown structure %q", *structure)
	}
	if err != nil {
		return err
	}
	if !st.Q3() {
		return fmt.Errorf("structure %v violates the Q3 condition; no asynchronous BFT protocol can serve it", st)
	}

	opts := sintra.DealOptions{Structure: st, GroupName: *groupName}
	if *testKeys {
		opts.RSAPrimes = sintra.TestRSAPrimes
		fmt.Fprintln(os.Stderr, "WARNING: embedded test RSA primes in use; anyone can forge signatures")
	}
	fmt.Printf("dealing keys for %v over group %s ...\n", st, *groupName)
	pub, secrets, err := sintra.Deal(opts)
	if err != nil {
		return err
	}
	if err := sintra.SaveDeployment(*out, pub, secrets); err != nil {
		return err
	}

	addrs := make([]string, st.N())
	if *addrsCSV != "" {
		parts := strings.Split(*addrsCSV, ",")
		if len(parts) != st.N() {
			return fmt.Errorf("-addrs needs %d entries", st.N())
		}
		copy(addrs, parts)
	} else {
		for i := range addrs {
			addrs[i] = fmt.Sprintf("%s:%d", *host, *basePort+i)
		}
	}
	if err := os.WriteFile(filepath.Join(*out, "addrs.txt"), []byte(strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		return err
	}

	fmt.Printf("wrote %s: public.gob, %d party files, addrs.txt\n", *out, st.N())
	fmt.Println("start each server:  sintra-node -config", *out, "-index <i>")
	fmt.Println("then use a client:  sintra-client -config", *out, "-op put -key k -value v")
	return nil
}
